//! The real-life example: a vehicle cruise controller (CC).
//!
//! The paper's §6 closes with "a vehicle cruise controller (CC) composed of
//! 32 processes \[8\], which is implemented on a single microcontroller with
//! a memory unit and communication interface. Nine processes, which are
//! critically involved with the actuators, have been considered hard. We
//! have set k = 2 and have considered µ as 10% of process worst-case
//! execution times."
//!
//! The exact task set of \[8\] (a licentiate thesis) is not publicly
//! machine-readable, so this module models a CC with the stated shape —
//! 32 processes, 9 hard actuator-side processes, k = 2, per-process
//! µ = 10 % of WCET — organized in the classic CC pipeline: sensor
//! acquisition → signal conditioning → state estimation → control law →
//! actuation, with driver-interface, diagnosis and logging branches as soft
//! processes. The substitution is recorded in DESIGN.md; the experiment
//! exercises exactly the same code paths as the paper's.

use ftqs_core::{
    Application, ApplicationError, ExecutionTimes, FaultModel, Process, Time, UtilityFunction,
};
use ftqs_graph::NodeId;

/// Number of processes in the cruise controller model.
pub const PROCESS_COUNT: usize = 32;

/// Number of hard processes (actuator-critical).
pub const HARD_COUNT: usize = 9;

/// Builds the 32-process cruise-controller application.
///
/// # Errors
///
/// Propagates [`ApplicationError`] — never fails for the fixed model; the
/// `Result` keeps the signature honest for callers.
pub fn cruise_controller() -> Result<Application, ApplicationError> {
    // Period: one 300 ms control cycle (typical 3.3 Hz outer loop for a CC
    // speed controller is slow; we use 300 ms as in the paper's Fig. 1
    // scale so numbers stay in familiar ranges).
    let period = Time::from_ms(300);
    let mut b = Application::builder(period, FaultModel::new(2, Time::from_ms(5)));

    // Helper: execution envelope plus the 10%-of-WCET recovery override.
    let et = |bcet: u64, wcet: u64| {
        ExecutionTimes::uniform(Time::from_ms(bcet), Time::from_ms(wcet))
            .expect("bcet <= wcet in the fixed model")
    };
    let mu10 = |wcet: u64| Time::from_ms((wcet as f64 * 0.10).ceil() as u64);
    let hard = |name: &str, bcet: u64, wcet: u64, deadline: u64| {
        Process::hard(name, et(bcet, wcet), Time::from_ms(deadline))
            .with_recovery_overhead(mu10(wcet))
    };
    let soft = |name: &str, bcet: u64, wcet: u64, u: UtilityFunction| {
        Process::soft(name, et(bcet, wcet), u).with_recovery_overhead(mu10(wcet))
    };
    let step = |peak: f64, points: [(u64, f64); 3]| {
        UtilityFunction::step(peak, points.map(|(t, v)| (Time::from_ms(t), v)))
            .expect("fixed utility tables are valid")
    };

    // --- Sensor acquisition (soft: stale sensor values degrade, they do
    // not endanger the actuators thanks to the hard safety monitor). ------
    let wheel_fl = b.add_process(soft(
        "wheel_speed_fl",
        2,
        6,
        step(12.0, [(40, 8.0), (90, 4.0), (160, 0.0)]),
    ));
    let wheel_fr = b.add_process(soft(
        "wheel_speed_fr",
        2,
        6,
        step(12.0, [(40, 8.0), (90, 4.0), (160, 0.0)]),
    ));
    let wheel_rl = b.add_process(soft(
        "wheel_speed_rl",
        2,
        6,
        step(12.0, [(40, 8.0), (90, 4.0), (160, 0.0)]),
    ));
    let wheel_rr = b.add_process(soft(
        "wheel_speed_rr",
        2,
        6,
        step(12.0, [(40, 8.0), (90, 4.0), (160, 0.0)]),
    ));
    let engine_rpm = b.add_process(soft(
        "engine_rpm",
        2,
        8,
        step(14.0, [(50, 9.0), (110, 4.0), (180, 0.0)]),
    ));
    let throttle_pos = b.add_process(soft(
        "throttle_position",
        2,
        8,
        step(14.0, [(50, 9.0), (110, 4.0), (180, 0.0)]),
    ));

    // --- Driver interface (hard where it gates actuation). ---------------
    // Brake/clutch detection must always deactivate the CC: hard.
    let brake_pedal = b.add_process(hard("brake_pedal_monitor", 2, 8, 60));
    let clutch = b.add_process(hard("clutch_monitor", 2, 8, 70));
    let buttons = b.add_process(soft(
        "driver_buttons",
        2,
        10,
        step(10.0, [(60, 6.0), (140, 3.0), (220, 0.0)]),
    ));

    // --- Signal conditioning / estimation. --------------------------------
    let wheel_filter = b.add_process(soft(
        "wheel_speed_filter",
        4,
        12,
        step(16.0, [(70, 10.0), (140, 5.0), (220, 0.0)]),
    ));
    let speed_est = b.add_process(hard("vehicle_speed_estimator", 6, 16, 120));
    let accel_est = b.add_process(soft(
        "acceleration_estimator",
        4,
        12,
        step(14.0, [(90, 9.0), (160, 4.0), (240, 0.0)]),
    ));
    let slope_est = b.add_process(soft(
        "road_slope_estimator",
        4,
        14,
        step(10.0, [(100, 6.0), (180, 3.0), (260, 0.0)]),
    ));
    let rpm_filter = b.add_process(soft(
        "rpm_filter",
        3,
        10,
        step(10.0, [(80, 6.0), (150, 3.0), (230, 0.0)]),
    ));

    // --- Mode logic & set-speed management. --------------------------------
    let mode_logic = b.add_process(hard("mode_logic", 4, 12, 150));
    let setpoint = b.add_process(soft(
        "setpoint_manager",
        3,
        10,
        step(12.0, [(100, 8.0), (180, 4.0), (260, 0.0)]),
    ));
    let resume_logic = b.add_process(soft(
        "resume_logic",
        2,
        8,
        step(8.0, [(110, 5.0), (190, 2.0), (270, 0.0)]),
    ));

    // --- Control law (hard: feeds the actuators). --------------------------
    let speed_error = b.add_process(hard("speed_error", 2, 8, 170));
    let pi_controller = b.add_process(hard("pi_controller", 5, 14, 200));
    let feedforward = b.add_process(soft(
        "slope_feedforward",
        3,
        10,
        step(12.0, [(150, 8.0), (220, 4.0), (280, 0.0)]),
    ));
    let limiter = b.add_process(hard("command_limiter", 2, 6, 215));

    // --- Actuation (hard). --------------------------------------------------
    let throttle_cmd = b.add_process(hard("throttle_actuator_cmd", 3, 10, 240));
    let safety_monitor = b.add_process(hard("actuation_safety_monitor", 2, 8, 255));

    // --- Comfort / diagnosis / telemetry (soft). ----------------------------
    let jerk_limiter = b.add_process(soft(
        "jerk_shaping",
        3,
        10,
        step(10.0, [(200, 6.0), (250, 3.0), (290, 0.0)]),
    ));
    let display = b.add_process(soft(
        "driver_display",
        3,
        12,
        step(14.0, [(180, 9.0), (240, 4.0), (295, 0.0)]),
    ));
    let chime = b.add_process(soft(
        "audible_feedback",
        2,
        6,
        step(6.0, [(200, 4.0), (260, 2.0), (295, 0.0)]),
    ));
    let diag_engine = b.add_process(soft(
        "diagnosis_engine",
        4,
        14,
        step(12.0, [(210, 8.0), (260, 4.0), (298, 0.0)]),
    ));
    let dtc_logger = b.add_process(soft(
        "dtc_logger",
        3,
        12,
        step(8.0, [(220, 5.0), (270, 2.0), (298, 0.0)]),
    ));
    let can_tx = b.add_process(soft(
        "can_status_tx",
        2,
        8,
        step(10.0, [(220, 6.0), (270, 3.0), (298, 0.0)]),
    ));
    let trip_computer = b.add_process(soft(
        "trip_computer",
        3,
        12,
        step(8.0, [(230, 5.0), (280, 2.0), (299, 0.0)]),
    ));
    let adaptive_tuner = b.add_process(soft(
        "gain_adaptation",
        4,
        14,
        step(10.0, [(230, 6.0), (280, 3.0), (299, 0.0)]),
    ));
    let telemetry = b.add_process(soft(
        "telemetry_uplink",
        3,
        10,
        step(6.0, [(240, 4.0), (285, 2.0), (299, 0.0)]),
    ));

    // --- Dependencies -------------------------------------------------------
    let dep = |b: &mut ftqs_core::ApplicationBuilder, from: NodeId, to: NodeId| {
        b.add_dependency(from, to)
            .expect("fixed model dependencies are acyclic");
    };
    // Wheel sensors feed the filter; filter feeds speed estimation.
    for w in [wheel_fl, wheel_fr, wheel_rl, wheel_rr] {
        dep(&mut b, w, wheel_filter);
    }
    dep(&mut b, wheel_filter, speed_est);
    dep(&mut b, wheel_filter, accel_est);
    dep(&mut b, engine_rpm, rpm_filter);
    dep(&mut b, rpm_filter, slope_est);
    dep(&mut b, accel_est, slope_est);
    dep(&mut b, throttle_pos, slope_est);

    // Driver interface gates mode logic.
    dep(&mut b, brake_pedal, mode_logic);
    dep(&mut b, clutch, mode_logic);
    dep(&mut b, buttons, mode_logic);
    dep(&mut b, buttons, setpoint);
    dep(&mut b, buttons, resume_logic);
    dep(&mut b, resume_logic, setpoint);
    dep(&mut b, speed_est, mode_logic);

    // Control law chain.
    dep(&mut b, mode_logic, speed_error);
    dep(&mut b, setpoint, speed_error);
    dep(&mut b, speed_est, speed_error);
    dep(&mut b, speed_error, pi_controller);
    dep(&mut b, slope_est, feedforward);
    dep(&mut b, pi_controller, limiter);
    dep(&mut b, feedforward, limiter);
    dep(&mut b, jerk_limiter, throttle_cmd);
    dep(&mut b, limiter, jerk_limiter);
    dep(&mut b, limiter, throttle_cmd);
    dep(&mut b, throttle_cmd, safety_monitor);
    dep(&mut b, brake_pedal, safety_monitor);

    // Soft tails.
    dep(&mut b, mode_logic, display);
    dep(&mut b, setpoint, display);
    dep(&mut b, mode_logic, chime);
    dep(&mut b, pi_controller, diag_engine);
    dep(&mut b, safety_monitor, dtc_logger);
    dep(&mut b, diag_engine, dtc_logger);
    dep(&mut b, mode_logic, can_tx);
    dep(&mut b, speed_est, trip_computer);
    dep(&mut b, pi_controller, adaptive_tuner);
    dep(&mut b, diag_engine, telemetry);
    dep(&mut b, trip_computer, telemetry);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot FTSS through the engine (test convenience).
    fn ftss_schedule(
        app: &ftqs_core::Application,
    ) -> Result<ftqs_core::FSchedule, ftqs_core::Error> {
        Ok(ftqs_core::Engine::new()
            .session()
            .synthesize(app, &ftqs_core::SynthesisRequest::ftss())?
            .root_schedule()
            .clone())
    }

    #[test]
    fn shape_matches_the_paper() {
        let app = cruise_controller().unwrap();
        assert_eq!(app.len(), PROCESS_COUNT);
        assert_eq!(app.hard_processes().count(), HARD_COUNT);
        assert_eq!(app.faults().k, 2);
    }

    #[test]
    fn recovery_overheads_are_ten_percent_of_wcet() {
        let app = cruise_controller().unwrap();
        for p in app.processes() {
            let wcet = app.process(p).times().wcet().as_ms();
            let mu = app.recovery_overhead(p).as_ms();
            let expected = ((wcet as f64) * 0.10).ceil() as u64;
            assert_eq!(mu, expected, "process {}", app.process(p).name());
        }
    }

    #[test]
    fn cruise_controller_is_ftss_schedulable() {
        let app = cruise_controller().unwrap();
        let s = ftss_schedule(&app).expect("the CC must be schedulable");
        assert!(s.analyze(&app).is_schedulable());
        // All 9 hard processes are scheduled (never dropped).
        for h in app.hard_processes() {
            assert!(s.position_of(h).is_some());
        }
    }

    #[test]
    fn graph_is_acyclic_and_connected_enough() {
        let app = cruise_controller().unwrap();
        // The safety monitor is reachable from every wheel sensor.
        let g = app.graph();
        let monitor = app
            .processes()
            .find(|&p| app.process(p).name() == "actuation_safety_monitor")
            .unwrap();
        let wheel = app
            .processes()
            .find(|&p| app.process(p).name() == "wheel_speed_fl")
            .unwrap();
        assert!(g.is_reachable(wheel, monitor));
    }

    #[test]
    fn deadlines_fit_inside_the_period() {
        let app = cruise_controller().unwrap();
        for h in app.hard_processes() {
            let d = app.process(h).criticality().deadline().unwrap();
            assert!(d <= app.period());
        }
    }
}
