//! Parameters of the synthetic application generator.

use ftqs_core::Time;

/// Task-graph topology family used by the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Layered TGFF-style graphs (the default; see
    /// [`ftqs_graph::generate::layered`]).
    #[default]
    Layered,
    /// Series-parallel graphs (see
    /// [`ftqs_graph::generate::series_parallel`]).
    SeriesParallel,
}

/// Knobs of [`generate`](crate::synthetic::generate), defaulting to the
/// paper's evaluation setup (§6): WCETs uniform in `[10, 100]` ms, BCETs
/// uniform in `[0, wcet]`, `k = 3` faults, µ = 15 ms, roughly half the
/// processes hard.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Number of processes.
    pub processes: usize,
    /// Task-graph topology family.
    pub topology: Topology,
    /// Fraction of processes that are hard (0.0..=1.0).
    pub hard_ratio: f64,
    /// WCET range in milliseconds (inclusive).
    pub wcet_range: (u64, u64),
    /// Fault budget `k`.
    pub k: usize,
    /// Recovery overhead µ.
    pub mu: Time,
    /// Maximum width of a graph layer.
    pub max_width: usize,
    /// Probability of extra edges between consecutive layers.
    pub edge_prob: f64,
    /// Deadline laxity: hard deadlines are placed at the reference
    /// worst-case completion times scaled by a factor drawn uniformly from
    /// this range. Values below ~1.0 tend to produce unschedulable
    /// applications.
    pub deadline_laxity: (f64, f64),
    /// Period laxity: the period is the reference worst-case makespan
    /// (including the shared fault delay) scaled by this factor.
    pub period_laxity: f64,
    /// Peak soft utility range.
    pub utility_peak: (f64, f64),
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            processes: 20,
            topology: Topology::default(),
            hard_ratio: 0.5,
            wcet_range: (10, 100),
            k: 3,
            mu: Time::from_ms(15),
            max_width: 4,
            edge_prob: 0.25,
            deadline_laxity: (0.75, 1.1),
            period_laxity: 1.05,
            utility_peak: (20.0, 100.0),
        }
    }
}

impl GeneratorParams {
    /// The paper's §6 setup for a given application size.
    #[must_use]
    pub fn paper(processes: usize) -> Self {
        GeneratorParams {
            processes,
            ..GeneratorParams::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero processes, inverted ranges,
    /// ratios outside `[0, 1]`). Generation is test infrastructure; loud
    /// failure beats silently odd workloads.
    pub fn validate(&self) {
        assert!(self.processes > 0, "need at least one process");
        assert!(
            (0.0..=1.0).contains(&self.hard_ratio),
            "hard_ratio must be a fraction"
        );
        assert!(
            self.wcet_range.0 <= self.wcet_range.1 && self.wcet_range.1 > 0,
            "invalid wcet range"
        );
        assert!(self.max_width > 0, "max_width must be positive");
        assert!(
            self.deadline_laxity.0 <= self.deadline_laxity.1,
            "invalid deadline laxity"
        );
        assert!(self.period_laxity > 0.0, "period laxity must be positive");
        assert!(
            self.utility_peak.0 <= self.utility_peak.1 && self.utility_peak.0 >= 0.0,
            "invalid utility peak range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = GeneratorParams::default();
        assert_eq!(p.wcet_range, (10, 100));
        assert_eq!(p.k, 3);
        assert_eq!(p.mu, Time::from_ms(15));
        assert!((p.hard_ratio - 0.5).abs() < f64::EPSILON);
        p.validate();
    }

    #[test]
    fn paper_sets_size() {
        let p = GeneratorParams::paper(35);
        assert_eq!(p.processes, 35);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_invalid() {
        GeneratorParams {
            processes: 0,
            ..GeneratorParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "hard_ratio")]
    fn bad_ratio_invalid() {
        GeneratorParams {
            hard_ratio: 1.5,
            ..GeneratorParams::default()
        }
        .validate();
    }
}
