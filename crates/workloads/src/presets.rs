//! Experiment presets matching the paper's evaluation section (§6).
//!
//! Each preset bundles the workload parameters of one experiment so the
//! bench harness, the examples and the integration tests all draw from the
//! same definitions.

use crate::params::GeneratorParams;

/// Application sizes of the Fig. 9 sweep: "10, 15, 20, 25, 30, 35, 40, 45,
/// and 50 processes".
pub const FIG9_SIZES: [usize; 9] = [10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Applications per size in the paper (450 total over 9 sizes).
pub const FIG9_APPS_PER_SIZE: usize = 50;

/// Fault counts evaluated in Fig. 9b and Table 1.
pub const FAULT_COUNTS: [usize; 4] = [0, 1, 2, 3];

/// Tree-size sweep of Table 1 (number of schedules in the quasi-static
/// tree).
pub const TABLE1_NODES: [usize; 8] = [1, 2, 8, 13, 23, 34, 79, 89];

/// Table 1 uses "50 applications with 30 processes each ... 50/50" split.
pub const TABLE1_APPS: usize = 50;

/// Parameters of one Fig. 9 cell.
#[must_use]
pub fn fig9_params(size: usize) -> GeneratorParams {
    GeneratorParams::paper(size)
}

/// Parameters of the Table 1 experiment (30 processes, 50/50 hard/soft).
#[must_use]
pub fn table1_params() -> GeneratorParams {
    GeneratorParams {
        processes: 30,
        hard_ratio: 0.5,
        ..GeneratorParams::default()
    }
}

/// Deterministic seed for application `index` of experiment `tag`, so every
/// harness regenerates identical workloads.
#[must_use]
pub fn app_seed(tag: u64, index: usize) -> u64 {
    0xDA7E_2008u64 ^ tag.rotate_left(17) ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Fault-model families swept by the robustness experiment, by canonical
/// preset name (resolved with `ftqs_sim::FaultModel::preset`; this crate
/// sits below the sim crate, so the grid is plain data here).
pub const ROBUSTNESS_MODELS: [&str; 4] = ["independent", "bursty", "intermittent", "wcet-stress"];

/// Application sizes of the robustness sweep (a subset of the Fig. 9 sizes
/// — degradation curves need many scenarios per cell, so the grid stays
/// tractable).
pub const ROBUSTNESS_SIZES: [usize; 3] = [10, 20, 30];

/// Applications per size in the robustness sweep.
pub const ROBUSTNESS_APPS_PER_SIZE: usize = 10;

/// Fault intensities (planned faults per cycle) for a design budget of
/// `k`: `0..=2k`, crossing the design point at `k`.
#[must_use]
pub fn robustness_intensities(k: usize) -> Vec<usize> {
    (0..=2 * k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_covers_450_apps() {
        assert_eq!(FIG9_SIZES.len() * FIG9_APPS_PER_SIZE, 450);
    }

    #[test]
    fn table1_matches_paper() {
        let p = table1_params();
        assert_eq!(p.processes, 30);
        assert!((p.hard_ratio - 0.5).abs() < f64::EPSILON);
        assert_eq!(TABLE1_NODES[0], 1);
        assert_eq!(*TABLE1_NODES.last().unwrap(), 89);
    }

    #[test]
    fn seeds_differ_across_indices_and_tags() {
        assert_ne!(app_seed(1, 0), app_seed(1, 1));
        assert_ne!(app_seed(1, 0), app_seed(2, 0));
    }

    #[test]
    fn robustness_grid_crosses_the_design_point() {
        let k = 3;
        let intensities = robustness_intensities(k);
        assert_eq!(intensities.first(), Some(&0));
        assert_eq!(intensities.last(), Some(&(2 * k)));
        assert!(intensities.contains(&k), "must include the design point");
        assert!(ROBUSTNESS_SIZES.iter().all(|s| FIG9_SIZES.contains(s)));
        assert_eq!(ROBUSTNESS_MODELS[0], "independent");
    }
}
