//! Execution scenarios: sampled execution times plus a fault plan.
//!
//! The paper evaluates schedules over "20,000 different execution scenarios
//! for the case of no faults, 1, 2, and 3 faults", with process completion
//! times "uniformly distributed between the best-case execution time and
//! the worst-case execution time" (§6). An [`ExecutionScenario`] fixes one
//! such outcome: a duration for every potential execution attempt of every
//! process, and which attempts are hit by a transient fault.
//!
//! The same scenario is replayed against every scheduler under comparison,
//! so FTQS/FTSS/FTSF differences are never sampling noise.
//!
//! # Fault-model taxonomy
//!
//! The synthesis side assumes the paper's design contract: at most `k`
//! transient faults per cycle, independently placed, with every duration
//! inside `[bcet, wcet]` (`ftqs_core::FaultModel` carries that contract's
//! parameters `k` and µ). This module's [`FaultModel`] is the *environment*
//! side: the stochastic process that actually generates faults and
//! durations in a simulated cycle, which may or may not respect the
//! contract. Four families are provided:
//!
//! * [`FaultModel::Independent`] — the paper's model and the default.
//!   Durations integer-uniform in `[bcet, wcet]`, fault targets drawn
//!   uniformly with replacement. This variant is pinned **bit-identical**
//!   to the sampler every previous evaluation (fig9, Table 1) used: the
//!   same seed produces the same [`ExecutionScenario`], so Monte Carlo
//!   means are provably unchanged (see the `independent_model_is_bit_identical_to_legacy_sampler`
//!   test and the pinned goldens in `montecarlo`).
//! * [`FaultModel::Bursty`] — correlated faults: a materialized fault
//!   raises the near-term hazard. Modeled as the discrete analogue of a
//!   two-state (calm/burst) Markov process: after each fault the chain is
//!   in the burst state, where with probability `locality` the next fault
//!   strikes within `window` positions of the previous target (processes
//!   adjacent in the application are adjacent in schedule time), and with
//!   probability `1 - locality` the chain relaxes to the calm state's
//!   uniform draw.
//! * [`FaultModel::Intermittent`] — a struck process is likelier to fault
//!   again on re-execution (an intermittent physical cause rather than a
//!   one-shot transient): after each fault, with probability `reoccur` the
//!   next fault hits the *same* process's next attempt.
//! * [`FaultModel::WcetStress`] — an execution-time stressor: fault
//!   placement stays independent, but each attempt's duration exceeds the
//!   WCET with probability `overrun_prob` (uniform in
//!   `(wcet, overrun_factor · wcet]`), violating the analysis assumption
//!   that WCETs are safe bounds.
//!
//! # Out-of-model scenarios
//!
//! [`ScenarioSampler::sample`] accepts any `fault_count`, including counts
//! beyond the application's design budget `k`; attempt tables are sized to
//! the *planned fault load* (`max(k, fault_count) + 1` attempts), not to
//! `k + 1`. Reads past a process's attempt table saturate to a defined
//! outcome (the process's WCET, no fault) instead of panicking, so a
//! runtime that re-executes more often than the plan anticipated stays
//! total. The online scheduler reports how gracefully it degraded under
//! such scenarios via `DegradationVerdict` (see `crate::online`).

use ftqs_core::{Application, Time};
use ftqs_graph::NodeId;
use rand::Rng;

/// A precomputed uniform integer range, drawn without hardware division.
///
/// The vendored `gen_range(lo..=hi)` computes `lo + next_u64() % width`
/// with a fresh 64-bit division per draw. Duration envelopes are fixed per
/// process, so the sampler precomputes `m = ceil(2^128 / width)` once and
/// evaluates the *same remainder* by Lemire's direct method (the
/// fractional part of `m·x`, scaled by `width`) — a handful of multiplies
/// replacing the division in the hottest loop of every Monte Carlo run.
/// Draws are bit-identical to `gen_range` by construction (see the
/// `fast_range_matches_gen_range_bit_for_bit` test).
#[derive(Debug, Clone, Copy)]
struct FastRange {
    /// Inclusive lower bound.
    lo: u64,
    /// Inclusive upper bound.
    hi: u64,
    /// `hi - lo + 1`; `0` encodes the degenerate full-u64 range.
    width: u64,
    /// `ceil(2^128 / width)`, wrapping (`0` when `width == 1`).
    magic: u128,
}

impl FastRange {
    /// Range of `gen_range(lo..=hi)`.
    fn inclusive(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi);
        let (width, magic) = match (hi - lo).checked_add(1) {
            Some(w) => (w, (u128::MAX / u128::from(w)).wrapping_add(1)),
            None => (0, 0),
        };
        FastRange {
            lo,
            hi,
            width,
            magic,
        }
    }

    /// Range of `gen_range(lo..hi)` (half-open).
    fn half_open(lo: u64, hi: u64) -> Self {
        debug_assert!(lo < hi);
        FastRange::inclusive(lo, hi - 1)
    }

    /// One draw, bit-identical to the `gen_range` this range mirrors.
    #[inline]
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let x = rng.next_u64();
        if self.width == 0 {
            return self.lo.wrapping_add(x);
        }
        // `x % width` as the high half of (frac(m·x / 2^128) · width).
        let lowbits = self.magic.wrapping_mul(u128::from(x));
        let top = (lowbits >> 64) * u128::from(self.width);
        let bot = ((lowbits & u128::from(u64::MAX)) * u128::from(self.width)) >> 64;
        self.lo + ((top + bot) >> 64) as u64
    }
}

/// The stochastic environment process generating faults and execution
/// times for sampled scenarios — see the module docs for the taxonomy.
///
/// Not to be confused with `ftqs_core::FaultModel`, which carries the
/// *design-side* contract (`k`, µ) the schedules were synthesized against;
/// this type describes what the environment actually does, which the
/// robustness harness deliberately pushes beyond that contract.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultModel {
    /// The paper's independent-uniform model (the default) — bit-identical
    /// to the sampler used by every previous evaluation.
    #[default]
    Independent,
    /// Correlated/bursty faults (two-state Markov analogue): after a
    /// fault, with probability `locality` the next fault strikes within
    /// `window` process positions of the previous target.
    Bursty {
        /// Probability that the burst state persists (the next fault is
        /// local to the previous one). Clamped to `[0, 1]` at sampling
        /// time; `0.0` degenerates to [`FaultModel::Independent`]
        /// placement.
        locality: f64,
        /// Index half-width of the burst neighbourhood.
        window: usize,
    },
    /// Intermittent faults: after a fault, with probability `reoccur` the
    /// next fault hits the same process's next attempt (it faults again on
    /// re-execution).
    Intermittent {
        /// Probability a struck process is struck again by the next fault.
        /// Clamped to `[0, 1]` at sampling time; `0.0` degenerates to
        /// [`FaultModel::Independent`] placement.
        reoccur: f64,
    },
    /// Execution-time stressor: independent fault placement, but each
    /// attempt overruns its WCET with probability `overrun_prob`.
    WcetStress {
        /// Per-attempt probability of exceeding the WCET. Clamped to
        /// `[0, 1]` at sampling time.
        overrun_prob: f64,
        /// Upper bound of the overrun as a multiple of the WCET; overrun
        /// durations are uniform in `(wcet, overrun_factor · wcet]`
        /// (at least 1 ms beyond the WCET).
        overrun_factor: f64,
    },
}

/// Canonical preset names accepted by [`FaultModel::preset`], in display
/// order. `ftqs_workloads::presets::ROBUSTNESS_MODELS` mirrors this list
/// for the benchmark grid.
pub const FAULT_MODEL_NAMES: [&str; 4] = ["independent", "bursty", "intermittent", "wcet-stress"];

impl FaultModel {
    /// The canonical parameterization of the named model family, as swept
    /// by `bench_robustness` and the CLI `robustness` command. Returns
    /// `None` for unknown names (see [`FAULT_MODEL_NAMES`]).
    #[must_use]
    pub fn preset(name: &str) -> Option<FaultModel> {
        match name {
            "independent" => Some(FaultModel::Independent),
            "bursty" => Some(FaultModel::Bursty {
                locality: 0.75,
                window: 2,
            }),
            "intermittent" => Some(FaultModel::Intermittent { reoccur: 0.75 }),
            "wcet-stress" => Some(FaultModel::WcetStress {
                overrun_prob: 0.1,
                overrun_factor: 1.5,
            }),
            _ => None,
        }
    }

    /// The family name (the [`FAULT_MODEL_NAMES`] entry this model belongs
    /// to, independent of its parameters).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::Independent => "independent",
            FaultModel::Bursty { .. } => "bursty",
            FaultModel::Intermittent { .. } => "intermittent",
            FaultModel::WcetStress { .. } => "wcet-stress",
        }
    }
}

/// One fully-determined execution outcome of the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionScenario {
    /// `durations[p][a]`: execution time of attempt `a` (0 = first run) of
    /// process `p`.
    durations: Vec<Vec<Time>>,
    /// `faulty[p][a]`: attempt `a` of process `p` is hit by a fault.
    faulty: Vec<Vec<bool>>,
    /// Saturation duration per process for attempts beyond the table (the
    /// WCET for sampled scenarios; the per-process table maximum for
    /// [`ExecutionScenario::from_tables`]).
    overflow_duration: Vec<Time>,
    /// Total faults planned (may exceed the application's `k` for
    /// out-of-model scenarios).
    fault_count: usize,
}

impl ExecutionScenario {
    /// Builds a scenario from explicit tables. Used by tests that need an
    /// exact outcome; simulations use [`ScenarioSampler`].
    ///
    /// Attempts beyond a process's table saturate to that process's
    /// maximum tabled duration with no fault (sampled scenarios saturate
    /// to the WCET; explicit tables have no application to read it from).
    ///
    /// # Panics
    ///
    /// Panics if table shapes disagree.
    #[must_use]
    pub fn from_tables(durations: Vec<Vec<Time>>, faulty: Vec<Vec<bool>>) -> Self {
        assert_eq!(durations.len(), faulty.len(), "table shapes must agree");
        for (d, f) in durations.iter().zip(&faulty) {
            assert_eq!(d.len(), f.len(), "attempt counts must agree");
        }
        let fault_count = faulty.iter().flatten().filter(|&&b| b).count();
        let overflow_duration = durations
            .iter()
            .map(|d| d.iter().copied().max().unwrap_or(Time::ZERO))
            .collect();
        ExecutionScenario {
            durations,
            faulty,
            overflow_duration,
            fault_count,
        }
    }

    /// A deterministic scenario: every attempt takes the process's AET and
    /// no faults occur. Useful as a baseline probe.
    #[must_use]
    pub fn average_case(app: &Application) -> Self {
        let attempts = app.faults().k + 1;
        let durations = app
            .processes()
            .map(|p| vec![app.process(p).times().aet(); attempts])
            .collect();
        let faulty = app.processes().map(|_| vec![false; attempts]).collect();
        let overflow_duration = app
            .processes()
            .map(|p| app.process(p).times().wcet())
            .collect();
        ExecutionScenario {
            durations,
            faulty,
            overflow_duration,
            fault_count: 0,
        }
    }

    /// Execution time of attempt `attempt` of `process`.
    ///
    /// Attempts beyond the planned table saturate to the process's
    /// worst-case duration (no `Vec` index panic), so a runtime driven
    /// past the planned fault load stays total.
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    #[must_use]
    pub fn duration(&self, process: NodeId, attempt: usize) -> Time {
        let row = &self.durations[process.index()];
        row.get(attempt)
            .copied()
            .unwrap_or(self.overflow_duration[process.index()])
    }

    /// Whether attempt `attempt` of `process` is hit by a fault. Attempts
    /// beyond the planned table saturate to `false` (no fault).
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    #[must_use]
    pub fn is_faulty(&self, process: NodeId, attempt: usize) -> bool {
        self.faulty[process.index()]
            .get(attempt)
            .copied()
            .unwrap_or(false)
    }

    /// Number of faults planned in this scenario.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Number of attempt slots per process (`max(k, planned faults) + 1`
    /// for sampled scenarios).
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.durations.first().map_or(0, Vec::len)
    }
}

/// Read access to one execution outcome, by process *index*.
///
/// The online runtimes are generic over this trait so the same scenario
/// loop runs against the boxed [`ExecutionScenario`] tables (tests,
/// hand-built outcomes) and the allocation-free [`FlatScenario`] buffer
/// (Monte Carlo batches). Reads beyond the attempt table must saturate to
/// a defined outcome (worst-case duration, no fault), never panic.
pub trait ScenarioView {
    /// Execution time of attempt `attempt` of the process at `process`
    /// (its node index). Saturates past the table.
    fn attempt_duration(&self, process: usize, attempt: usize) -> Time;
    /// Whether the attempt is hit by a fault. Saturates to `false`.
    fn attempt_faulty(&self, process: usize, attempt: usize) -> bool;
    /// Duration and fault flag of one attempt in a single call — the
    /// per-attempt read of the runtime hot loop. Implementors sharing an
    /// index computation between the two tables should override this.
    #[inline]
    fn attempt(&self, process: usize, attempt: usize) -> (Time, bool) {
        (
            self.attempt_duration(process, attempt),
            self.attempt_faulty(process, attempt),
        )
    }
}

impl ScenarioView for ExecutionScenario {
    #[inline]
    fn attempt_duration(&self, process: usize, attempt: usize) -> Time {
        self.duration(NodeId::from_index(process), attempt)
    }

    #[inline]
    fn attempt_faulty(&self, process: usize, attempt: usize) -> bool {
        self.is_faulty(NodeId::from_index(process), attempt)
    }
}

/// A reusable, flat (single-allocation) scenario buffer for batched
/// simulation.
///
/// Holds the same information as [`ExecutionScenario`] — per-attempt
/// durations, a fault plan, per-process saturation durations — in dense
/// row-major arrays (`process * attempts + attempt`) that
/// [`ScenarioSampler::sample_into`] refills without allocating. One
/// buffer per Monte Carlo worker replaces the two `Vec<Vec<_>>` the boxed
/// representation allocates per scenario.
#[derive(Debug, Clone, Default)]
pub struct FlatScenario {
    processes: usize,
    attempts: usize,
    /// `durations[p * attempts + a]`.
    durations: Vec<Time>,
    /// `faulty[p * attempts + a]`.
    faulty: Vec<bool>,
    /// Saturation duration per process (the WCET).
    overflow: Vec<Time>,
    /// Fault-placement scratch: hits per process.
    hits: Vec<usize>,
    fault_count: usize,
}

impl FlatScenario {
    /// An empty buffer; the first [`ScenarioSampler::sample_into`] sizes
    /// it.
    #[must_use]
    pub fn new() -> Self {
        FlatScenario::default()
    }

    /// Number of processes in the current fill.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Number of attempt slots per process in the current fill.
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Number of faults planned in the current fill.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }
}

impl ScenarioView for FlatScenario {
    #[inline]
    fn attempt_duration(&self, process: usize, attempt: usize) -> Time {
        if attempt < self.attempts {
            self.durations[process * self.attempts + attempt]
        } else {
            self.overflow[process]
        }
    }

    #[inline]
    fn attempt_faulty(&self, process: usize, attempt: usize) -> bool {
        attempt < self.attempts && self.faulty[process * self.attempts + attempt]
    }

    #[inline]
    fn attempt(&self, process: usize, attempt: usize) -> (Time, bool) {
        if attempt < self.attempts {
            let i = process * self.attempts + attempt;
            (self.durations[i], self.faulty[i])
        } else {
            (self.overflow[process], false)
        }
    }
}

/// Samples [`ExecutionScenario`]s for an application under a pluggable
/// [`FaultModel`].
///
/// Under the default [`FaultModel::Independent`], durations are
/// integer-uniform in `[bcet, wcet]` per attempt and faults are planned by
/// drawing `fault_count` target processes uniformly (with replacement); a
/// process drawn `c` times has its first `c` attempts faulty — so a
/// re-execution can fault again, as in the paper's Fig. 3 worst case. A
/// fault aimed at a process the scheduler never executes (dropped) does
/// not materialize; applying the identical plan to every scheduler keeps
/// comparisons fair. The other models perturb exactly one axis each (see
/// the [`FaultModel`] docs).
#[derive(Debug)]
pub struct ScenarioSampler<'a> {
    app: &'a Application,
    model: FaultModel,
    /// Per-process `[bcet, wcet]` duration ranges with precomputed
    /// division-free reciprocals, in process-index order.
    ranges: Vec<FastRange>,
    /// Per-process WCET, in process-index order (the saturation value).
    wcet: Vec<Time>,
    /// The uniform fault-target range `0..n`.
    target: FastRange,
}

impl<'a> ScenarioSampler<'a> {
    /// Creates a sampler for `app` under the paper's independent-uniform
    /// model.
    #[must_use]
    pub fn new(app: &'a Application) -> Self {
        ScenarioSampler::with_model(app, FaultModel::Independent)
    }

    /// Creates a sampler for `app` under `model`.
    #[must_use]
    pub fn with_model(app: &'a Application, model: FaultModel) -> Self {
        let ranges = app
            .processes()
            .map(|p| {
                let t = app.process(p).times();
                FastRange::inclusive(t.bcet().as_ms(), t.wcet().as_ms())
            })
            .collect();
        let wcet = app
            .processes()
            .map(|p| app.process(p).times().wcet())
            .collect();
        ScenarioSampler {
            app,
            model,
            ranges,
            wcet,
            target: FastRange::half_open(0, app.len() as u64),
        }
    }

    /// The fault model this sampler draws from.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Samples one scenario with exactly `fault_count` planned faults.
    ///
    /// `fault_count` may exceed the application's design budget `k`
    /// (out-of-model injection); the attempt tables are sized to
    /// `max(k, fault_count) + 1` so every planned fault has a re-execution
    /// slot. For `fault_count <= k` under [`FaultModel::Independent`] the
    /// RNG draw sequence is bit-identical to the historical sampler.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, fault_count: usize) -> ExecutionScenario {
        let k = self.app.faults().k;
        let attempts = k.max(fault_count) + 1;
        let n = self.app.len();

        // Durations first (matching the historical draw order exactly).
        let mut durations = Vec::with_capacity(n);
        for fr in &self.ranges {
            durations.push(
                (0..attempts)
                    .map(|_| self.draw_duration(rng, fr))
                    .collect::<Vec<Time>>(),
            );
        }

        // Fault placement: `fault_count` hits; a process hit `c` times has
        // its first `c` attempts faulty.
        let mut hits = vec![0usize; n];
        self.place_faults(rng, fault_count, &mut hits);
        let faulty = hits
            .iter()
            .map(|&c| (0..attempts).map(|a| a < c).collect())
            .collect();
        let overflow_duration = self.wcet.clone();
        ExecutionScenario {
            durations,
            faulty,
            overflow_duration,
            fault_count,
        }
    }

    /// The pre-optimization sampler, preserved verbatim as a measurement
    /// baseline (the same convention as `ftqs_core::oracle` on the
    /// synthesis side): durations drawn through the vendored `gen_range`
    /// (one hardware division per draw) into freshly boxed per-process
    /// `Vec`s, exactly as every evaluation before the flat runtime paid
    /// per scenario. `bench_runtime` times the tree-walk baseline through
    /// this path; results are identical to [`ScenarioSampler::sample`]
    /// (asserted by the `reference_sampler_matches_current` test).
    pub fn sample_reference<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fault_count: usize,
    ) -> ExecutionScenario {
        let k = self.app.faults().k;
        let attempts = k.max(fault_count) + 1;
        let n = self.app.len();

        let mut durations = Vec::with_capacity(n);
        for p in self.app.processes() {
            let t = self.app.process(p).times();
            let (lo, hi) = (t.bcet().as_ms(), t.wcet().as_ms());
            durations.push(match self.model {
                FaultModel::WcetStress {
                    overrun_prob,
                    overrun_factor,
                } => (0..attempts)
                    .map(|_| {
                        let base = rng.gen_range(lo..=hi);
                        if rng.gen_bool(overrun_prob.clamp(0.0, 1.0)) {
                            let extra_max =
                                ((hi as f64 * (overrun_factor - 1.0)).ceil() as u64).max(1);
                            Time::from_ms(hi + rng.gen_range(1..=extra_max))
                        } else {
                            Time::from_ms(base)
                        }
                    })
                    .collect::<Vec<Time>>(),
                _ => (0..attempts)
                    .map(|_| Time::from_ms(rng.gen_range(lo..=hi)))
                    .collect::<Vec<Time>>(),
            });
        }

        let mut hits = vec![0usize; n];
        self.place_faults_reference(rng, fault_count, &mut hits);
        let faulty = hits
            .iter()
            .map(|&c| (0..attempts).map(|a| a < c).collect())
            .collect();
        let overflow_duration = self
            .app
            .processes()
            .map(|p| self.app.process(p).times().wcet())
            .collect();
        ExecutionScenario {
            durations,
            faulty,
            overflow_duration,
            fault_count,
        }
    }

    /// Fault placement of [`ScenarioSampler::sample_reference`]: the
    /// pre-optimization `gen_range` draws, preserved verbatim.
    fn place_faults_reference<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fault_count: usize,
        hits: &mut [usize],
    ) {
        let n = hits.len();
        match self.model {
            FaultModel::Independent | FaultModel::WcetStress { .. } => {
                for _ in 0..fault_count {
                    hits[rng.gen_range(0..n)] += 1;
                }
            }
            FaultModel::Bursty { locality, window } => {
                let locality = locality.clamp(0.0, 1.0);
                let mut last: Option<usize> = None;
                for _ in 0..fault_count {
                    let target = match last {
                        Some(i) if rng.gen_bool(locality) => {
                            let lo = i.saturating_sub(window);
                            let hi = (i + window).min(n - 1);
                            rng.gen_range(lo..=hi)
                        }
                        _ => rng.gen_range(0..n),
                    };
                    hits[target] += 1;
                    last = Some(target);
                }
            }
            FaultModel::Intermittent { reoccur } => {
                let reoccur = reoccur.clamp(0.0, 1.0);
                let mut last: Option<usize> = None;
                for _ in 0..fault_count {
                    let target = match last {
                        Some(i) if rng.gen_bool(reoccur) => i,
                        _ => rng.gen_range(0..n),
                    };
                    hits[target] += 1;
                    last = Some(target);
                }
            }
        }
    }

    /// Refills `out` with one sampled scenario, allocating nothing after
    /// the first call on a given buffer.
    ///
    /// Draws the *identical* RNG sequence as [`ScenarioSampler::sample`]
    /// with the same `fault_count` (attempt tables sized to
    /// `max(k, fault_count) + 1`), so a runtime consuming the flat buffer
    /// sees bit-identical scenarios.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fault_count: usize,
        out: &mut FlatScenario,
    ) {
        let attempts = self.app.faults().k.max(fault_count) + 1;
        self.sample_into_with_attempts(rng, fault_count, attempts, out);
    }

    /// [`ScenarioSampler::sample_into`] with an explicit attempt-table
    /// width — the common-random-numbers hook for intensity sweeps.
    ///
    /// Holding `attempts` fixed at `max(k, max swept intensity) + 1`
    /// across a sweep makes every fault count consume the *same* duration
    /// draws from the same per-scenario stream, so sweep columns differ
    /// only in fault placement (common random numbers: column deltas are
    /// pure fault effects, not sampling noise). With
    /// `attempts == max(k, fault_count) + 1` the draw sequence is
    /// bit-identical to [`ScenarioSampler::sample`] — which is why an
    /// in-model sweep (all intensities `<= k`) is unchanged by CRN: every
    /// column already uses `k + 1` attempts.
    ///
    /// # Panics
    ///
    /// Panics if `attempts < max(k, fault_count) + 1` (a planned fault
    /// would have no re-execution slot).
    pub fn sample_into_with_attempts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fault_count: usize,
        attempts: usize,
        out: &mut FlatScenario,
    ) {
        let k = self.app.faults().k;
        assert!(
            attempts > k.max(fault_count),
            "attempt table too narrow: {attempts} slots for k = {k}, {fault_count} faults"
        );
        let n = self.app.len();

        out.processes = n;
        out.attempts = attempts;
        out.fault_count = fault_count;
        out.durations.resize(n * attempts, Time::ZERO);
        out.overflow.clear();
        out.overflow.extend_from_slice(&self.wcet);

        // Durations first, process-major — the same draw order as
        // `sample`. The model match is hoisted out of the draw loop: every
        // non-stress model draws `Time::from_ms(fr.draw(rng))`, exactly
        // what `draw_duration` computes per call.
        match self.model {
            FaultModel::WcetStress { .. } => {
                for (slots, fr) in out.durations.chunks_exact_mut(attempts).zip(&self.ranges) {
                    for slot in slots {
                        *slot = self.draw_duration(rng, fr);
                    }
                }
            }
            _ => {
                for (slots, fr) in out.durations.chunks_exact_mut(attempts).zip(&self.ranges) {
                    for slot in slots {
                        *slot = Time::from_ms(fr.draw(rng));
                    }
                }
            }
        }

        // Then fault placement. Steady-state refills overwrite in place.
        if out.hits.len() == n {
            out.hits.fill(0);
        } else {
            out.hits.clear();
            out.hits.resize(n, 0);
        }
        self.place_faults(rng, fault_count, &mut out.hits);
        if out.faulty.len() == n * attempts {
            out.faulty.fill(false);
        } else {
            out.faulty.clear();
            out.faulty.resize(n * attempts, false);
        }
        for (p, &c) in out.hits.iter().enumerate() {
            for a in 0..c {
                out.faulty[p * attempts + a] = true;
            }
        }
    }

    /// One attempt-duration draw under this sampler's model. Factored out
    /// so `sample` and `sample_into*` provably consume identical RNG
    /// sequences.
    #[inline]
    fn draw_duration<R: Rng + ?Sized>(&self, rng: &mut R, fr: &FastRange) -> Time {
        match self.model {
            FaultModel::WcetStress {
                overrun_prob,
                overrun_factor,
            } => {
                let base = fr.draw(rng);
                if rng.gen_bool(overrun_prob.clamp(0.0, 1.0)) {
                    // Uniform in (wcet, factor * wcet], at least 1 ms
                    // beyond the WCET even for tiny WCETs.
                    let extra_max = ((fr.hi as f64 * (overrun_factor - 1.0)).ceil() as u64).max(1);
                    Time::from_ms(fr.hi + rng.gen_range(1..=extra_max))
                } else {
                    Time::from_ms(base)
                }
            }
            _ => Time::from_ms(fr.draw(rng)),
        }
    }

    /// Draws the fault plan: `fault_count` hits over `hits` (zeroed by the
    /// caller). Shared by `sample` and `sample_into*`.
    fn place_faults<R: Rng + ?Sized>(&self, rng: &mut R, fault_count: usize, hits: &mut [usize]) {
        let n = hits.len();
        match self.model {
            FaultModel::Independent | FaultModel::WcetStress { .. } => {
                for _ in 0..fault_count {
                    hits[self.target.draw(rng) as usize] += 1;
                }
            }
            FaultModel::Bursty { locality, window } => {
                let locality = locality.clamp(0.0, 1.0);
                let mut last: Option<usize> = None;
                for _ in 0..fault_count {
                    let target = match last {
                        Some(i) if rng.gen_bool(locality) => {
                            let lo = i.saturating_sub(window);
                            let hi = (i + window).min(n - 1);
                            rng.gen_range(lo..=hi)
                        }
                        _ => self.target.draw(rng) as usize,
                    };
                    hits[target] += 1;
                    last = Some(target);
                }
            }
            FaultModel::Intermittent { reoccur } => {
                let reoccur = reoccur.clamp(0.0, 1.0);
                let mut last: Option<usize> = None;
                for _ in 0..fault_count {
                    let target = match last {
                        Some(i) if rng.gen_bool(reoccur) => i,
                        _ => self.target.draw(rng) as usize,
                    };
                    hits[target] += 1;
                    last = Some(target);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{ExecutionTimes, FaultModel as DesignFaults, UtilityFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn app() -> Application {
        let mut b = Application::builder(t(1000), DesignFaults::new(2, t(5)));
        let et = ExecutionTimes::uniform(t(10), t(50)).unwrap();
        let a = b.add_hard("H", et, t(900));
        let s = b.add_soft("S", et, UtilityFunction::constant(10.0).unwrap());
        b.add_dependency(a, s).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn average_case_scenario_uses_aet_everywhere() {
        let app = app();
        let sc = ExecutionScenario::average_case(&app);
        assert_eq!(sc.fault_count(), 0);
        assert_eq!(sc.attempts(), 3);
        for p in app.processes() {
            for a in 0..3 {
                assert_eq!(sc.duration(p, a), t(30));
                assert!(!sc.is_faulty(p, a));
            }
        }
    }

    #[test]
    fn sampled_durations_stay_in_envelope() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let sc = sampler.sample(&mut rng, 2);
            for p in app.processes() {
                for a in 0..sc.attempts() {
                    let d = sc.duration(p, a);
                    assert!(d >= t(10) && d <= t(50));
                }
            }
        }
    }

    #[test]
    fn fault_plan_places_exact_count() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(2);
        for f in 0..=2 {
            let sc = sampler.sample(&mut rng, f);
            assert_eq!(sc.fault_count(), f);
            let planned: usize = app
                .processes()
                .map(|p| (0..sc.attempts()).filter(|&a| sc.is_faulty(p, a)).count())
                .sum();
            assert_eq!(planned, f);
        }
    }

    #[test]
    fn repeated_hits_fault_consecutive_attempts() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(3);
        // With 2 faults on a 2-process app, some scenario will double-hit.
        let mut saw_double = false;
        for _ in 0..100 {
            let sc = sampler.sample(&mut rng, 2);
            for p in app.processes() {
                if sc.is_faulty(p, 1) {
                    assert!(sc.is_faulty(p, 0), "faults hit earliest attempts first");
                    saw_double = true;
                }
            }
        }
        assert!(saw_double);
    }

    #[test]
    fn oversized_fault_count_sizes_attempt_tables_to_the_load() {
        // Out-of-model injection: 5 planned faults against a budget of
        // k = 2 used to panic; now the table grows to fit the plan.
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(4);
        let sc = sampler.sample(&mut rng, 5);
        assert_eq!(sc.fault_count(), 5);
        assert_eq!(sc.attempts(), 6, "max(k, faults) + 1 attempt slots");
        let planned: usize = app
            .processes()
            .map(|p| (0..sc.attempts()).filter(|&a| sc.is_faulty(p, a)).count())
            .sum();
        assert_eq!(planned, 5);
    }

    #[test]
    fn attempt_overflow_saturates_to_wcet_and_no_fault() {
        // The latent index-panic path: reads past the attempt table return
        // (WCET, no fault) instead of panicking.
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(5);
        let sc = sampler.sample(&mut rng, 2);
        let p = app.processes().next().unwrap();
        for overflow in [sc.attempts(), sc.attempts() + 1, 100] {
            assert_eq!(sc.duration(p, overflow), t(50), "saturates to WCET");
            assert!(!sc.is_faulty(p, overflow), "saturates to no fault");
        }
        // Explicit tables saturate to their per-process maximum.
        let manual = ExecutionScenario::from_tables(
            vec![vec![t(5), t(9)], vec![t(7)]],
            vec![vec![true, false], vec![false]],
        );
        assert_eq!(manual.duration(NodeId::from_index(0), 7), t(9));
        assert_eq!(manual.duration(NodeId::from_index(1), 7), t(7));
        assert!(!manual.is_faulty(NodeId::from_index(0), 7));
    }

    #[test]
    fn from_tables_counts_faults() {
        let sc = ExecutionScenario::from_tables(
            vec![vec![t(5), t(5)], vec![t(7), t(7)]],
            vec![vec![true, false], vec![false, false]],
        );
        assert_eq!(sc.fault_count(), 1);
        assert!(sc.is_faulty(NodeId::from_index(0), 0));
        assert_eq!(sc.duration(NodeId::from_index(1), 1), t(7));
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let a = sampler.sample(&mut StdRng::seed_from_u64(9), 1);
        let b = sampler.sample(&mut StdRng::seed_from_u64(9), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn all_models_are_deterministic_and_place_exact_counts() {
        let app = app();
        for name in FAULT_MODEL_NAMES {
            let model = FaultModel::preset(name).unwrap();
            assert_eq!(model.name(), name);
            let sampler = ScenarioSampler::with_model(&app, model);
            for f in [0usize, 1, 2, 4] {
                let a = sampler.sample(&mut StdRng::seed_from_u64(31), f);
                let b = sampler.sample(&mut StdRng::seed_from_u64(31), f);
                assert_eq!(a, b, "{name} not deterministic");
                assert_eq!(a.fault_count(), f);
                let planned: usize = app
                    .processes()
                    .map(|p| (0..a.attempts()).filter(|&x| a.is_faulty(p, x)).count())
                    .sum();
                assert_eq!(planned, f, "{name} planned {planned} != {f}");
            }
        }
    }

    #[test]
    fn zero_parameter_models_degenerate_to_independent_placement() {
        // locality/reoccur of 0 consume the same RNG draws as the
        // independent placement (one gen_bool per post-first fault is the
        // only difference, so we compare fault sets structurally instead:
        // every draw falls back to the uniform branch).
        let app = app();
        for model in [
            FaultModel::Bursty {
                locality: 0.0,
                window: 1,
            },
            FaultModel::Intermittent { reoccur: 0.0 },
        ] {
            let sampler = ScenarioSampler::with_model(&app, model);
            let mut rng = StdRng::seed_from_u64(77);
            let sc = sampler.sample(&mut rng, 3);
            assert_eq!(sc.fault_count(), 3);
        }
    }

    #[test]
    fn intermittent_reoccurrence_concentrates_hits() {
        // With reoccur = 1.0 every fault after the first hits the same
        // process: one process carries all faults on consecutive attempts.
        let app = app();
        let sampler = ScenarioSampler::with_model(&app, FaultModel::Intermittent { reoccur: 1.0 });
        let mut rng = StdRng::seed_from_u64(11);
        let sc = sampler.sample(&mut rng, 4);
        let per_process: Vec<usize> = app
            .processes()
            .map(|p| (0..sc.attempts()).filter(|&a| sc.is_faulty(p, a)).count())
            .collect();
        assert!(
            per_process.contains(&4),
            "all hits on one process: {per_process:?}"
        );
    }

    #[test]
    fn bursty_with_full_locality_stays_in_window() {
        // 6-process chain app so the window constraint is observable.
        let mut b = Application::builder(t(5000), DesignFaults::new(2, t(5)));
        let et = ExecutionTimes::uniform(t(10), t(20)).unwrap();
        for i in 0..6 {
            b.add_soft(format!("S{i}"), et, UtilityFunction::constant(1.0).unwrap());
        }
        let app = b.build().unwrap();
        let model = FaultModel::Bursty {
            locality: 1.0,
            window: 1,
        };
        let sampler = ScenarioSampler::with_model(&app, model);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let sc = sampler.sample(&mut rng, 4);
            let hit: Vec<usize> = app
                .processes()
                .filter(|&p| sc.is_faulty(p, 0))
                .map(NodeId::index)
                .collect();
            // All struck processes lie within a contiguous band of width
            // <= 1 + number of steps the walk can drift; with window 1 and
            // 4 faults the extreme spread is 3.
            if let (Some(&lo), Some(&hi)) = (hit.iter().min(), hit.iter().max()) {
                assert!(hi - lo <= 3, "burst spread {hit:?}");
            }
        }
    }

    #[test]
    fn wcet_stress_overruns_and_only_overruns_beyond_wcet() {
        let app = app();
        let model = FaultModel::WcetStress {
            overrun_prob: 0.5,
            overrun_factor: 1.5,
        };
        let sampler = ScenarioSampler::with_model(&app, model);
        let mut rng = StdRng::seed_from_u64(17);
        let mut overruns = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let sc = sampler.sample(&mut rng, 1);
            for p in app.processes() {
                for a in 0..sc.attempts() {
                    let d = sc.duration(p, a);
                    total += 1;
                    if d > t(50) {
                        overruns += 1;
                        assert!(d <= t(75), "overrun capped at factor * wcet, got {d}");
                    } else {
                        assert!(d >= t(10));
                    }
                }
            }
        }
        let rate = overruns as f64 / total as f64;
        assert!(
            (0.35..0.65).contains(&rate),
            "overrun rate {rate} far from configured 0.5"
        );
    }

    #[test]
    fn reference_sampler_matches_current() {
        // The preserved baseline and the optimized path must draw the
        // same scenarios from the same streams, for every model.
        let app = app();
        for name in FAULT_MODEL_NAMES {
            let sampler = ScenarioSampler::with_model(&app, FaultModel::preset(name).unwrap());
            for f in [0usize, 1, 2, 5] {
                let a = sampler.sample_reference(&mut StdRng::seed_from_u64(0xCAFE + f as u64), f);
                let b = sampler.sample(&mut StdRng::seed_from_u64(0xCAFE + f as u64), f);
                assert_eq!(a, b, "{name} f={f}");
            }
        }
    }

    #[test]
    fn fast_range_matches_gen_range_bit_for_bit() {
        // The division-free draw must reproduce the vendored `gen_range`
        // exactly for every envelope shape: degenerate points, powers of
        // two, odd widths, huge and full-u64 ranges.
        let cases: [(u64, u64); 8] = [
            (5, 5),
            (0, 1),
            (10, 50),
            (7, 7 + 63),
            (1, 1_000_000),
            (0, u64::MAX - 1),
            (3, u64::MAX),
            (0, u64::MAX),
        ];
        for (lo, hi) in cases {
            let fr = FastRange::inclusive(lo, hi);
            let mut a = StdRng::seed_from_u64(lo ^ hi.rotate_left(17) ^ 0xFA57);
            let mut b = a.clone();
            for _ in 0..200 {
                assert_eq!(
                    fr.draw(&mut a),
                    b.gen_range(lo..=hi),
                    "draw diverged for [{lo}, {hi}]"
                );
            }
        }
        // Half-open construction mirrors `gen_range(lo..hi)`.
        let fr = FastRange::half_open(0, 17);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = a.clone();
        for _ in 0..200 {
            assert_eq!(fr.draw(&mut a), b.gen_range(0..17u64));
        }
    }

    #[test]
    fn preset_roundtrip_and_unknown_names() {
        for name in FAULT_MODEL_NAMES {
            assert_eq!(FaultModel::preset(name).unwrap().name(), name);
        }
        assert!(FaultModel::preset("gaussian").is_none());
    }
}
