//! Execution scenarios: sampled execution times plus a fault plan.
//!
//! The paper evaluates schedules over "20,000 different execution scenarios
//! for the case of no faults, 1, 2, and 3 faults", with process completion
//! times "uniformly distributed between the best-case execution time and
//! the worst-case execution time" (§6). An [`ExecutionScenario`] fixes one
//! such outcome: a duration for every potential execution attempt of every
//! process, and which attempts are hit by a transient fault.
//!
//! The same scenario is replayed against every scheduler under comparison,
//! so FTQS/FTSS/FTSF differences are never sampling noise.

use ftqs_core::{Application, Time};
use ftqs_graph::NodeId;
use rand::Rng;

/// One fully-determined execution outcome of the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionScenario {
    /// `durations[p][a]`: execution time of attempt `a` (0 = first run) of
    /// process `p`.
    durations: Vec<Vec<Time>>,
    /// `faulty[p][a]`: attempt `a` of process `p` is hit by a fault.
    faulty: Vec<Vec<bool>>,
    /// Total faults planned (<= the application's `k`).
    fault_count: usize,
}

impl ExecutionScenario {
    /// Builds a scenario from explicit tables. Used by tests that need an
    /// exact outcome; simulations use [`ScenarioSampler`].
    ///
    /// # Panics
    ///
    /// Panics if table shapes disagree.
    #[must_use]
    pub fn from_tables(durations: Vec<Vec<Time>>, faulty: Vec<Vec<bool>>) -> Self {
        assert_eq!(durations.len(), faulty.len(), "table shapes must agree");
        for (d, f) in durations.iter().zip(&faulty) {
            assert_eq!(d.len(), f.len(), "attempt counts must agree");
        }
        let fault_count = faulty.iter().flatten().filter(|&&b| b).count();
        ExecutionScenario {
            durations,
            faulty,
            fault_count,
        }
    }

    /// A deterministic scenario: every attempt takes the process's AET and
    /// no faults occur. Useful as a baseline probe.
    #[must_use]
    pub fn average_case(app: &Application) -> Self {
        let attempts = app.faults().k + 1;
        let durations = app
            .processes()
            .map(|p| vec![app.process(p).times().aet(); attempts])
            .collect();
        let faulty = app.processes().map(|_| vec![false; attempts]).collect();
        ExecutionScenario {
            durations,
            faulty,
            fault_count: 0,
        }
    }

    /// Execution time of attempt `attempt` of `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process or attempt is out of range.
    #[must_use]
    pub fn duration(&self, process: NodeId, attempt: usize) -> Time {
        self.durations[process.index()][attempt]
    }

    /// Whether attempt `attempt` of `process` is hit by a fault.
    ///
    /// # Panics
    ///
    /// Panics if the process or attempt is out of range.
    #[must_use]
    pub fn is_faulty(&self, process: NodeId, attempt: usize) -> bool {
        self.faulty[process.index()][attempt]
    }

    /// Number of faults planned in this scenario.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Number of attempt slots per process (`k + 1`).
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.durations.first().map_or(0, Vec::len)
    }
}

/// Samples [`ExecutionScenario`]s for an application.
///
/// Durations are integer-uniform in `[bcet, wcet]` per attempt. Faults are
/// planned by drawing `fault_count` target processes uniformly (with
/// replacement); a process drawn `c` times has its first `c` attempts
/// faulty — so a re-execution can fault again, as in the paper's Fig. 3
/// worst case. A fault aimed at a process the scheduler never executes
/// (dropped) does not materialize; applying the identical plan to every
/// scheduler keeps comparisons fair.
#[derive(Debug)]
pub struct ScenarioSampler<'a> {
    app: &'a Application,
}

impl<'a> ScenarioSampler<'a> {
    /// Creates a sampler for `app`.
    #[must_use]
    pub fn new(app: &'a Application) -> Self {
        ScenarioSampler { app }
    }

    /// Samples one scenario with exactly `fault_count` planned faults.
    ///
    /// # Panics
    ///
    /// Panics if `fault_count` exceeds the application's fault budget `k`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, fault_count: usize) -> ExecutionScenario {
        let k = self.app.faults().k;
        assert!(
            fault_count <= k,
            "scenario cannot plan more faults than the budget k = {k}"
        );
        let attempts = k + 1;
        let n = self.app.len();
        let mut durations = Vec::with_capacity(n);
        for p in self.app.processes() {
            let t = self.app.process(p).times();
            let (lo, hi) = (t.bcet().as_ms(), t.wcet().as_ms());
            durations.push(
                (0..attempts)
                    .map(|_| Time::from_ms(rng.gen_range(lo..=hi)))
                    .collect::<Vec<Time>>(),
            );
        }
        let mut hits = vec![0usize; n];
        for _ in 0..fault_count {
            hits[rng.gen_range(0..n)] += 1;
        }
        let faulty = hits
            .iter()
            .map(|&c| (0..attempts).map(|a| a < c).collect())
            .collect();
        ExecutionScenario {
            durations,
            faulty,
            fault_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{ExecutionTimes, FaultModel, UtilityFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn app() -> Application {
        let mut b = Application::builder(t(1000), FaultModel::new(2, t(5)));
        let et = ExecutionTimes::uniform(t(10), t(50)).unwrap();
        let a = b.add_hard("H", et, t(900));
        let s = b.add_soft("S", et, UtilityFunction::constant(10.0).unwrap());
        b.add_dependency(a, s).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn average_case_scenario_uses_aet_everywhere() {
        let app = app();
        let sc = ExecutionScenario::average_case(&app);
        assert_eq!(sc.fault_count(), 0);
        assert_eq!(sc.attempts(), 3);
        for p in app.processes() {
            for a in 0..3 {
                assert_eq!(sc.duration(p, a), t(30));
                assert!(!sc.is_faulty(p, a));
            }
        }
    }

    #[test]
    fn sampled_durations_stay_in_envelope() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let sc = sampler.sample(&mut rng, 2);
            for p in app.processes() {
                for a in 0..sc.attempts() {
                    let d = sc.duration(p, a);
                    assert!(d >= t(10) && d <= t(50));
                }
            }
        }
    }

    #[test]
    fn fault_plan_places_exact_count() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(2);
        for f in 0..=2 {
            let sc = sampler.sample(&mut rng, f);
            assert_eq!(sc.fault_count(), f);
            let planned: usize = app
                .processes()
                .map(|p| (0..sc.attempts()).filter(|&a| sc.is_faulty(p, a)).count())
                .sum();
            assert_eq!(planned, f);
        }
    }

    #[test]
    fn repeated_hits_fault_consecutive_attempts() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(3);
        // With 2 faults on a 2-process app, some scenario will double-hit.
        let mut saw_double = false;
        for _ in 0..100 {
            let sc = sampler.sample(&mut rng, 2);
            for p in app.processes() {
                if sc.is_faulty(p, 1) {
                    assert!(sc.is_faulty(p, 0), "faults hit earliest attempts first");
                    saw_double = true;
                }
            }
        }
        assert!(saw_double);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn oversized_fault_count_panics() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sampler.sample(&mut rng, 3);
    }

    #[test]
    fn from_tables_counts_faults() {
        let sc = ExecutionScenario::from_tables(
            vec![vec![t(5), t(5)], vec![t(7), t(7)]],
            vec![vec![true, false], vec![false, false]],
        );
        assert_eq!(sc.fault_count(), 1);
        assert!(sc.is_faulty(NodeId::from_index(0), 0));
        assert_eq!(sc.duration(NodeId::from_index(1), 1), t(7));
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let app = app();
        let sampler = ScenarioSampler::new(&app);
        let a = sampler.sample(&mut StdRng::seed_from_u64(9), 1);
        let b = sampler.sample(&mut StdRng::seed_from_u64(9), 1);
        assert_eq!(a, b);
    }
}
