//! Monte Carlo evaluation of schedules and schedule trees.
//!
//! The paper evaluates every synthesized schedule over 20,000 random
//! execution scenarios per fault count (0, 1, 2, 3 faults) and reports the
//! average utility (§6). [`MonteCarlo`] reproduces that harness, replaying
//! identical scenarios against every scheduler under comparison and
//! splitting scenario batches across scoped worker threads (enabled by the
//! `parallel` feature, on by default).
//!
//! Results are independent of the thread count: scenario `i` derives its
//! seed from `(base_seed, i)` alone, and per-thread partial statistics are
//! merged with Welford/Chan combination, so serial and parallel runs agree
//! to floating-point merge order (means are exactly equal; see the
//! `parallel_means_match_serial` test).

use crate::online::OnlineScheduler;
use crate::scenario::ScenarioSampler;
use crate::stats::Accumulator;
use ftqs_core::{Application, QuasiStaticTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte Carlo harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Scenarios per fault count (the paper uses 20,000).
    pub scenarios: usize,
    /// Base RNG seed; scenario `i` derives its own deterministic stream.
    pub seed: u64,
    /// Number of worker threads (1 = sequential). Ignored (forced to 1)
    /// when the `parallel` feature is disabled.
    pub threads: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            scenarios: 2_000,
            seed: 0xF7_05,
            threads: available_threads(),
        }
    }
}

fn available_threads() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        1
    }
}

/// Aggregated outcome of one evaluation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluation {
    /// Utility statistics over all scenarios.
    pub utility: Accumulator,
    /// Hard-deadline misses observed (must stay 0 for correct schedulers).
    pub deadline_misses: u64,
    /// Average number of materialized faults per scenario.
    pub faults: Accumulator,
}

impl MonteCarlo {
    /// Evaluates `tree` over `self.scenarios` scenarios, each planning
    /// exactly `fault_count` faults.
    ///
    /// Scenario `i` is generated from seed `self.seed ⊕ hash(i)` regardless
    /// of thread count or tree, so different schedulers evaluated with the
    /// same config face identical environments.
    ///
    /// # Panics
    ///
    /// Panics if `fault_count` exceeds the application's fault budget.
    #[must_use]
    pub fn evaluate(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        fault_count: usize,
    ) -> Evaluation {
        let threads = effective_threads(self.threads, self.scenarios);
        if threads <= 1 {
            return evaluate_range(app, tree, fault_count, self.seed, 0, self.scenarios);
        }
        let chunk = self.scenarios.div_ceil(threads);
        let mut partials: Vec<Evaluation> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(self.scenarios);
                if lo >= hi {
                    break;
                }
                let seed = self.seed;
                handles.push(
                    scope.spawn(move || evaluate_range(app, tree, fault_count, seed, lo, hi)),
                );
            }
            for h in handles {
                partials.push(h.join().expect("worker thread panicked"));
            }
        });

        let mut total = Evaluation::default();
        for p in &partials {
            total.utility.merge(&p.utility);
            total.faults.merge(&p.faults);
            total.deadline_misses += p.deadline_misses;
        }
        total
    }

    /// Evaluates across several fault counts, returning one [`Evaluation`]
    /// per entry of `fault_counts` (the paper's 0/1/2/3-fault columns).
    #[must_use]
    pub fn evaluate_fault_sweep(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        fault_counts: &[usize],
    ) -> Vec<Evaluation> {
        fault_counts
            .iter()
            .map(|&f| self.evaluate(app, tree, f))
            .collect()
    }
}

/// Clamp the requested thread count to something useful; the `parallel`
/// feature gate forces serial execution when disabled.
fn effective_threads(requested: usize, scenarios: usize) -> usize {
    if cfg!(feature = "parallel") {
        requested.max(1).min(scenarios.max(1))
    } else {
        1
    }
}

/// Evaluates the scenario index range `lo..hi` — the per-thread worker.
fn evaluate_range(
    app: &Application,
    tree: &QuasiStaticTree,
    fault_count: usize,
    seed: u64,
    lo: usize,
    hi: usize,
) -> Evaluation {
    let runner = OnlineScheduler::new(app, tree);
    let sampler = ScenarioSampler::new(app);
    let mut eval = Evaluation::default();
    for i in lo..hi {
        let mut rng = StdRng::seed_from_u64(scenario_seed(seed, i as u64));
        let scenario = sampler.sample(&mut rng, fault_count);
        let out = runner.run(&scenario);
        eval.utility.add(out.utility);
        eval.faults.add(out.faults_hit as f64);
        if out.deadline_miss.is_some() {
            eval.deadline_misses += 1;
        }
    }
    eval
}

/// SplitMix64-style mixing so per-scenario seeds are decorrelated.
fn scenario_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{Engine, ExecutionTimes, FaultModel, SynthesisRequest, Time, UtilityFunction};

    fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftqs(budget))
            .unwrap()
            .into_tree()
    }

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn fig1_app() -> Application {
        let mut b = Application::builder(t(300), FaultModel::new(1, t(10)));
        let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(t(30), t(70)).unwrap(),
            UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
        );
        let p3 = b.add_soft(
            "P3",
            ExecutionTimes::uniform(t(40), t(80)).unwrap(),
            UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.add_dependency(p1, p3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn evaluation_is_deterministic_for_fixed_seed() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 200,
            seed: 42,
            threads: 1,
        };
        let a = mc.evaluate(&app, &tree, 1);
        let b = mc.evaluate(&app, &tree, 1);
        assert_eq!(a.utility.mean(), b.utility.mean());
        assert_eq!(a.deadline_misses, 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let base = MonteCarlo {
            scenarios: 300,
            seed: 7,
            threads: 1,
        };
        let par = MonteCarlo { threads: 4, ..base };
        let a = base.evaluate(&app, &tree, 1);
        let b = par.evaluate(&app, &tree, 1);
        assert!((a.utility.mean() - b.utility.mean()).abs() < 1e-9);
        assert_eq!(a.utility.count(), b.utility.count());
    }

    #[test]
    fn parallel_means_match_serial_across_thread_counts() {
        // The ISSUE-mandated property: for a fixed seed, the parallel
        // evaluation's statistics must match the serial ones for every
        // thread split (each scenario's seed depends only on its index).
        let app = fig1_app();
        let tree = synth_tree(&app, 6);
        let serial = MonteCarlo {
            scenarios: 257, // deliberately not divisible by the thread counts
            seed: 0xC0FFEE,
            threads: 1,
        };
        let reference = serial.evaluate(&app, &tree, 1);
        for threads in [2usize, 3, 5, 8] {
            let par = MonteCarlo { threads, ..serial };
            let got = par.evaluate(&app, &tree, 1);
            assert_eq!(got.utility.count(), reference.utility.count());
            assert!(
                (got.utility.mean() - reference.utility.mean()).abs() < 1e-9,
                "{threads} threads diverged"
            );
            assert!((got.faults.mean() - reference.faults.mean()).abs() < 1e-9);
            assert_eq!(got.deadline_misses, reference.deadline_misses);
        }
    }

    #[test]
    fn more_faults_never_help_on_average() {
        let app = fig1_app();
        let tree = synth_tree(&app, 6);
        let mc = MonteCarlo {
            scenarios: 500,
            seed: 3,
            threads: 2,
        };
        let evals = mc.evaluate_fault_sweep(&app, &tree, &[0, 1]);
        assert!(
            evals[0].utility.mean() >= evals[1].utility.mean(),
            "faults must not increase average utility"
        );
        assert!(evals[1].faults.mean() > 0.0);
        assert_eq!(evals[0].deadline_misses + evals[1].deadline_misses, 0);
    }

    #[test]
    fn scenario_seed_mixing_decorrelates() {
        let a = scenario_seed(1, 0);
        let b = scenario_seed(1, 1);
        let c = scenario_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
