//! Monte Carlo evaluation of schedules and schedule trees.
//!
//! The paper evaluates every synthesized schedule over 20,000 random
//! execution scenarios per fault count (0, 1, 2, 3 faults) and reports the
//! average utility (§6). [`MonteCarlo`] reproduces that harness, replaying
//! identical scenarios against every scheduler under comparison and
//! splitting scenario batches across scoped worker threads (enabled by the
//! `parallel` feature, on by default).
//!
//! Results are independent of the thread count: scenario `i` derives its
//! seed from `(base_seed, i)` alone (see [`scenario_seed`]), and
//! per-thread partial statistics are merged with Welford/Chan
//! combination, so serial and parallel runs agree to floating-point merge
//! order (means are exactly equal; see the `parallel_means_match_serial`
//! test).
//!
//! Since the flat-runtime work, evaluation executes on
//! [`FlatRuntime`]/[`BatchRunner`] (see `crate::runtime`): the tree image
//! and analyses are built once per call (or once per *sweep*, shared
//! read-only across worker threads and columns), per-worker scratch is
//! reused across scenarios, and sweeps run under common random numbers.
//! Outcomes are pinned bit-identical to the reference
//! `OnlineScheduler`-based harness.
//!
//! Beyond the paper's harness, [`MonteCarlo::evaluate_with_model`] runs the
//! same machinery under any [`FaultModel`] and any fault intensity —
//! including out-of-model intensities beyond the design budget `k` — and
//! [`Evaluation`] aggregates the resulting [`DegradationVerdict`]s into
//! hard-miss and degradation rates alongside the utility curve.

use crate::online::DegradationVerdict;
use crate::runtime::{BatchRunner, CycleOutcome, FlatRuntime};
use crate::scenario::FaultModel;
use crate::stats::Accumulator;
use ftqs_core::{Application, QuasiStaticTree};

/// Monte Carlo harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Scenarios per fault count (the paper uses 20,000).
    pub scenarios: usize,
    /// Base RNG seed; scenario `i` derives its own deterministic stream.
    pub seed: u64,
    /// Number of worker threads (1 = sequential). Ignored (forced to 1)
    /// when the `parallel` feature is disabled.
    pub threads: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            scenarios: 2_000,
            seed: 0xF7_05,
            threads: available_threads(),
        }
    }
}

fn available_threads() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        1
    }
}

/// Aggregated outcome of one evaluation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluation {
    /// Utility statistics over all scenarios.
    pub utility: Accumulator,
    /// Hard-deadline misses observed (must stay 0 for correct schedulers
    /// on in-model scenarios; out-of-model intensities can be non-zero).
    pub deadline_misses: u64,
    /// Scenarios that ran out-of-contract without a hard miss
    /// ([`DegradationVerdict::Degraded`]).
    pub degraded: u64,
    /// Average number of materialized faults per scenario.
    pub faults: Accumulator,
    /// WCET overruns per scenario (non-zero only under
    /// `FaultModel::WcetStress` or hand-built scenarios).
    pub overruns: Accumulator,
}

impl Evaluation {
    /// Fraction of scenarios ending in a hard-deadline miss.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let n = self.utility.count();
        if n == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / n as f64
        }
    }

    /// Fraction of scenarios that degraded without a hard miss.
    #[must_use]
    pub fn degraded_rate(&self) -> f64 {
        let n = self.utility.count();
        if n == 0 {
            0.0
        } else {
            self.degraded as f64 / n as f64
        }
    }

    /// Merges another evaluation (parallel reduction; Welford/Chan for
    /// the statistics).
    pub fn merge(&mut self, other: &Evaluation) {
        self.utility.merge(&other.utility);
        self.faults.merge(&other.faults);
        self.overruns.merge(&other.overruns);
        self.deadline_misses += other.deadline_misses;
        self.degraded += other.degraded;
    }

    /// Accumulates one simulated cycle.
    pub fn record(&mut self, out: &CycleOutcome) {
        self.utility.add(out.utility);
        self.faults.add(out.faults_hit as f64);
        self.overruns.add(out.wcet_overruns as f64);
        match out.verdict {
            DegradationVerdict::HardMiss { .. } => self.deadline_misses += 1,
            DegradationVerdict::Degraded { .. } => self.degraded += 1,
            DegradationVerdict::InModel => {}
        }
    }
}

impl MonteCarlo {
    /// Evaluates `tree` over `self.scenarios` scenarios, each planning
    /// exactly `fault_count` faults.
    ///
    /// Scenario `i` is generated from seed `self.seed ⊕ hash(i)` regardless
    /// of thread count or tree, so different schedulers evaluated with the
    /// same config face identical environments.
    ///
    /// `fault_count` may exceed the application's fault budget; see
    /// [`MonteCarlo::evaluate_with_model`] for the out-of-model semantics.
    #[must_use]
    pub fn evaluate(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        fault_count: usize,
    ) -> Evaluation {
        self.evaluate_with_model(app, tree, FaultModel::Independent, fault_count)
    }

    /// Evaluates `tree` under an explicit [`FaultModel`], planning exactly
    /// `fault_count` faults per scenario.
    ///
    /// With [`FaultModel::Independent`] and `fault_count <= k` this is
    /// bit-identical to [`MonteCarlo::evaluate`] (same scenarios, same
    /// statistics). Intensities beyond `k` and the non-default models
    /// produce out-of-model scenarios: runs never panic, and the
    /// per-scenario `DegradationVerdict`s are pooled into
    /// [`Evaluation::deadline_misses`] and [`Evaluation::degraded`].
    #[must_use]
    pub fn evaluate_with_model(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        model: FaultModel,
        fault_count: usize,
    ) -> Evaluation {
        let runtime = FlatRuntime::new(app, tree);
        self.evaluate_runtime(app, &runtime, model, fault_count)
    }

    /// [`MonteCarlo::evaluate_with_model`] against a prebuilt
    /// [`FlatRuntime`] — callers holding the flat image (sweeps, repeated
    /// evaluations of one tree) skip the per-call image build entirely;
    /// the image is shared read-only across worker threads.
    #[must_use]
    pub fn evaluate_runtime(
        &self,
        app: &Application,
        runtime: &FlatRuntime,
        model: FaultModel,
        fault_count: usize,
    ) -> Evaluation {
        BatchRunner::new(app, runtime, model).evaluate(self, fault_count)
    }

    /// Evaluates across several fault counts, returning one [`Evaluation`]
    /// per entry of `fault_counts` (the paper's 0/1/2/3-fault columns).
    ///
    /// The flat runtime image is built once and shared across all columns
    /// and worker threads, and every column executes under **common
    /// random numbers**: attempt tables are sized to the sweep's maximum
    /// (`max(k, max fault count) + 1`), so scenario `i` consumes the same
    /// duration draws in every column and column deltas are pure fault
    /// effects. For an in-model sweep (every count `<= k`, the paper's
    /// fig9b case) this is bit-identical to per-column
    /// [`MonteCarlo::evaluate`] — all columns already use `k + 1`
    /// attempts.
    #[must_use]
    pub fn evaluate_fault_sweep(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        fault_counts: &[usize],
    ) -> Vec<Evaluation> {
        self.evaluate_intensity_sweep(app, tree, FaultModel::Independent, fault_counts)
    }

    /// Sweeps fault intensity under one [`FaultModel`] — one
    /// [`Evaluation`] per entry of `intensities`, which may extend past
    /// the design budget (the robustness harness sweeps `0..=2k`). Shares
    /// the flat image and scenario draws across columns exactly like
    /// [`MonteCarlo::evaluate_fault_sweep`].
    #[must_use]
    pub fn evaluate_intensity_sweep(
        &self,
        app: &Application,
        tree: &QuasiStaticTree,
        model: FaultModel,
        intensities: &[usize],
    ) -> Vec<Evaluation> {
        let k = app.faults().k;
        let max_intensity = intensities.iter().copied().max().unwrap_or(0);
        let attempts = k.max(max_intensity) + 1;
        let runtime = FlatRuntime::new(app, tree);
        let runner = BatchRunner::new(app, &runtime, model);
        intensities
            .iter()
            .map(|&f| runner.evaluate_with_attempts(self, f, attempts))
            .collect()
    }
}

/// Clamp the requested thread count to something useful; the `parallel`
/// feature gate forces serial execution when disabled.
pub(crate) fn effective_threads(requested: usize, scenarios: usize) -> usize {
    if cfg!(feature = "parallel") {
        requested.max(1).min(scenarios.max(1))
    } else {
        1
    }
}

/// SplitMix64-style mixing so per-scenario seeds are decorrelated.
///
/// This is the RNG-stream contract of the whole evaluation stack:
/// scenario `i` of a run with base seed `s` *always* draws from a fresh
/// `StdRng` seeded with `scenario_seed(s, i)`, regardless of thread
/// count, batch shape, or runtime (reference or flat) — which is what
/// makes results thread-count invariant and schedulers comparable under
/// identical environments.
#[must_use]
pub fn scenario_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{
        Engine, ExecutionTimes, FaultModel as DesignFaults, SynthesisRequest, Time, UtilityFunction,
    };

    fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftqs(budget))
            .unwrap()
            .into_tree()
    }

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn fig1_app() -> Application {
        let mut b = Application::builder(t(300), DesignFaults::new(1, t(10)));
        let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(t(30), t(70)).unwrap(),
            UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
        );
        let p3 = b.add_soft(
            "P3",
            ExecutionTimes::uniform(t(40), t(80)).unwrap(),
            UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.add_dependency(p1, p3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn evaluation_is_deterministic_for_fixed_seed() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 200,
            seed: 42,
            threads: 1,
        };
        let a = mc.evaluate(&app, &tree, 1);
        let b = mc.evaluate(&app, &tree, 1);
        assert_eq!(a.utility.mean(), b.utility.mean());
        assert_eq!(a.deadline_misses, 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let base = MonteCarlo {
            scenarios: 300,
            seed: 7,
            threads: 1,
        };
        let par = MonteCarlo { threads: 4, ..base };
        let a = base.evaluate(&app, &tree, 1);
        let b = par.evaluate(&app, &tree, 1);
        assert!((a.utility.mean() - b.utility.mean()).abs() < 1e-9);
        assert_eq!(a.utility.count(), b.utility.count());
    }

    #[test]
    fn parallel_means_match_serial_across_thread_counts() {
        // The ISSUE-mandated property: for a fixed seed, the parallel
        // evaluation's statistics must match the serial ones for every
        // thread split (each scenario's seed depends only on its index).
        let app = fig1_app();
        let tree = synth_tree(&app, 6);
        let serial = MonteCarlo {
            scenarios: 257, // deliberately not divisible by the thread counts
            seed: 0xC0FFEE,
            threads: 1,
        };
        let reference = serial.evaluate(&app, &tree, 1);
        for threads in [2usize, 3, 5, 8] {
            let par = MonteCarlo { threads, ..serial };
            let got = par.evaluate(&app, &tree, 1);
            assert_eq!(got.utility.count(), reference.utility.count());
            assert!(
                (got.utility.mean() - reference.utility.mean()).abs() < 1e-9,
                "{threads} threads diverged"
            );
            assert!((got.faults.mean() - reference.faults.mean()).abs() < 1e-9);
            assert_eq!(got.deadline_misses, reference.deadline_misses);
        }
    }

    #[test]
    fn more_faults_never_help_on_average() {
        let app = fig1_app();
        let tree = synth_tree(&app, 6);
        let mc = MonteCarlo {
            scenarios: 500,
            seed: 3,
            threads: 2,
        };
        let evals = mc.evaluate_fault_sweep(&app, &tree, &[0, 1]);
        assert!(
            evals[0].utility.mean() >= evals[1].utility.mean(),
            "faults must not increase average utility"
        );
        assert!(evals[1].faults.mean() > 0.0);
        assert_eq!(evals[0].deadline_misses + evals[1].deadline_misses, 0);
    }

    #[test]
    fn independent_model_means_are_pinned_bit_identical() {
        // Goldens captured from the pre-FaultModel sampler: the default
        // model must reproduce fig9/table1-style means bit-for-bit.
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 200,
            seed: 42,
            threads: 1,
        };
        let f0 = mc.evaluate(&app, &tree, 0);
        let f1 = mc.evaluate(&app, &tree, 1);
        assert_eq!(f0.utility.mean().to_bits(), 0x404b933333333334);
        assert_eq!(f1.utility.mean().to_bits(), 0x403c7fffffffffff);
        // And the explicit-model path is the same machinery.
        let via_model = mc.evaluate_with_model(&app, &tree, FaultModel::Independent, 1);
        assert_eq!(via_model.utility.mean().to_bits(), 0x403c7fffffffffff);
    }

    #[test]
    fn out_of_model_intensities_aggregate_verdicts() {
        // k = 1; planning 2 or 3 faults is out-of-model. Runs must complete
        // and every scenario lands in exactly one verdict bucket.
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 300,
            seed: 11,
            threads: 2,
        };
        for f in [2usize, 3] {
            let e = mc.evaluate_with_model(&app, &tree, FaultModel::Independent, f);
            assert_eq!(e.utility.count(), 300);
            let in_model = 300 - e.deadline_misses - e.degraded;
            assert!(
                e.deadline_misses + e.degraded > 0,
                "{f} planned faults never exceeded the budget of 1?"
            );
            // Planned faults can land on dropped processes, so some runs
            // may still be in-model; the three buckets always partition.
            assert!(in_model <= 300);
        }
    }

    #[test]
    fn wcet_stress_model_reports_overruns_and_degradation() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 200,
            seed: 5,
            threads: 1,
        };
        let model = FaultModel::WcetStress {
            overrun_prob: 0.5,
            overrun_factor: 1.5,
        };
        let e = mc.evaluate_with_model(&app, &tree, model, 0);
        assert!(e.overruns.mean() > 0.0, "stressor produced no overruns");
        assert!(
            e.deadline_misses + e.degraded > 0,
            "overruns must surface as degradation or misses"
        );
        assert!(e.miss_rate() + e.degraded_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn intensity_sweep_covers_out_of_model_range() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let mc = MonteCarlo {
            scenarios: 100,
            seed: 23,
            threads: 1,
        };
        let intensities = [0usize, 1, 2];
        let evals = mc.evaluate_intensity_sweep(&app, &tree, FaultModel::Independent, &intensities);
        assert_eq!(evals.len(), 3);
        assert_eq!(evals[0].deadline_misses + evals[0].degraded, 0);
        assert!(evals[0].utility.mean() >= evals[2].utility.mean());
    }

    #[test]
    fn scenario_seed_mixing_decorrelates() {
        let a = scenario_seed(1, 0);
        let b = scenario_seed(1, 1);
        let c = scenario_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
