//! Execution traces: what the online scheduler did, when, and why.
//!
//! Traces make schedule behaviour inspectable — both for debugging the
//! scheduler itself and for the examples, which render them as a text
//! Gantt chart.
//!
//! Recording is opt-in: the runtimes are generic over an [`EventSink`],
//! so Monte Carlo batches run with [`NoTrace`] (the no-op sink, which
//! monomorphizes to zero event work — events are never even constructed)
//! while debugging and the CLI `--trace` path plug in a real [`Trace`].

use ftqs_core::Time;
use ftqs_graph::NodeId;
use std::fmt;

/// One event of an execution trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// An execution attempt of a process started.
    Started {
        /// The process.
        process: NodeId,
        /// Attempt number (0 = first execution).
        attempt: usize,
        /// Start time.
        at: Time,
    },
    /// A process completed successfully.
    Completed {
        /// The process.
        process: NodeId,
        /// Completion time.
        at: Time,
        /// Utility credited (0 for hard processes).
        utility: f64,
    },
    /// A transient fault hit the running attempt (detected at its end).
    Fault {
        /// The process.
        process: NodeId,
        /// The faulted attempt.
        attempt: usize,
        /// Detection time.
        at: Time,
    },
    /// A soft process was dropped (never started, or abandoned on fault).
    Dropped {
        /// The process.
        process: NodeId,
        /// Decision time.
        at: Time,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// The quasi-static scheduler switched to another tree node.
    Switched {
        /// Tree node executed before the switch.
        from: usize,
        /// Tree node selected.
        to: usize,
        /// Switch time (completion of the pivot).
        at: Time,
    },
    /// A hard process completed after its deadline (only possible in
    /// out-of-model scenarios — see `crate::online`'s degradation
    /// semantics).
    DeadlineMiss {
        /// The hard process.
        process: NodeId,
        /// Actual completion time.
        at: Time,
        /// The deadline it missed.
        deadline: Time,
    },
}

/// Why a soft process produced no fresh output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DropReason {
    /// Statically dropped at synthesis time.
    Static,
    /// Its latest safe start time had passed at run time.
    PastLatestStart,
    /// A fault hit it and no (usable) re-execution allowance remained.
    FaultNoRecovery,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::Static => "static",
            DropReason::PastLatestStart => "past latest start",
            DropReason::FaultNoRecovery => "fault without recovery",
        };
        f.write_str(s)
    }
}

/// Receives the events of one simulated cycle.
///
/// The online runtimes are generic over this trait so that callers who do
/// not need a trace pay nothing: with [`NoTrace`] the compiler removes the
/// event construction entirely. [`Trace`] implements it by appending.
pub trait EventSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// The no-op [`EventSink`]: the batched Monte Carlo path uses this so the
/// scenario loop compiles to no event work at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl EventSink for NoTrace {
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

impl EventSink for Trace {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

/// An ordered list of [`TraceEvent`]s from one simulated cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of fault events recorded.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fault { .. }))
            .count()
    }

    /// Number of schedule switches recorded.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Switched { .. }))
            .count()
    }

    /// Renders a human-readable listing; `name` maps process ids to names.
    #[must_use]
    pub fn render(&self, mut name: impl FnMut(NodeId) -> String) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = match e {
                TraceEvent::Started {
                    process,
                    attempt,
                    at,
                } => writeln!(
                    out,
                    "{at:>8}  start    {} (attempt {attempt})",
                    name(*process)
                ),
                TraceEvent::Completed {
                    process,
                    at,
                    utility,
                } => writeln!(
                    out,
                    "{at:>8}  done     {} (utility {utility:.1})",
                    name(*process)
                ),
                TraceEvent::Fault {
                    process,
                    attempt,
                    at,
                } => writeln!(
                    out,
                    "{at:>8}  FAULT    {} (attempt {attempt})",
                    name(*process)
                ),
                TraceEvent::Dropped {
                    process,
                    at,
                    reason,
                } => writeln!(out, "{at:>8}  drop     {} ({reason})", name(*process)),
                TraceEvent::Switched { from, to, at } => {
                    writeln!(out, "{at:>8}  switch   node {from} -> node {to}")
                }
                TraceEvent::DeadlineMiss {
                    process,
                    at,
                    deadline,
                } => writeln!(
                    out,
                    "{at:>8}  MISS     {} (deadline {deadline})",
                    name(*process)
                ),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn counters_count() {
        let mut tr = Trace::new();
        tr.push(TraceEvent::Started {
            process: nid(0),
            attempt: 0,
            at: Time::ZERO,
        });
        tr.push(TraceEvent::Fault {
            process: nid(0),
            attempt: 0,
            at: Time::from_ms(10),
        });
        tr.push(TraceEvent::Switched {
            from: 0,
            to: 1,
            at: Time::from_ms(20),
        });
        assert_eq!(tr.fault_count(), 1);
        assert_eq!(tr.switch_count(), 1);
        assert_eq!(tr.events().len(), 3);
    }

    #[test]
    fn render_mentions_names_and_reasons() {
        let mut tr = Trace::new();
        tr.push(TraceEvent::Dropped {
            process: nid(2),
            at: Time::from_ms(42),
            reason: DropReason::PastLatestStart,
        });
        let s = tr.render(|n| format!("P{}", n.index() + 1));
        assert!(s.contains("P3"));
        assert!(s.contains("past latest start"));
        assert!(s.contains("42ms"));
    }

    #[test]
    fn render_marks_deadline_misses() {
        let mut tr = Trace::new();
        tr.push(TraceEvent::DeadlineMiss {
            process: nid(0),
            at: Time::from_ms(210),
            deadline: Time::from_ms(180),
        });
        let s = tr.render(|n| format!("P{}", n.index() + 1));
        assert!(s.contains("MISS"));
        assert!(s.contains("P1"));
        assert!(s.contains("180ms"));
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::Static.to_string(), "static");
        assert_eq!(
            DropReason::FaultNoRecovery.to_string(),
            "fault without recovery"
        );
    }
}
