//! # ftqs-sim — online scheduler runtime and Monte Carlo evaluation
//!
//! This crate is the *execution* side of the DATE 2008 reproduction: given
//! the schedules synthesized by `ftqs-core`, it simulates operation cycles
//! of the application — actual execution times, transient faults with
//! recovery, runtime dropping of soft processes, and quasi-static schedule
//! switching — and aggregates utility statistics over many random
//! scenarios.
//!
//! * [`ExecutionScenario`] / [`ScenarioSampler`] — one concrete outcome of
//!   the environment (per-attempt durations, fault plan), drawn from a
//!   pluggable [`FaultModel`] (independent-uniform as in the paper, plus
//!   bursty, intermittent and WCET-stress variants for robustness
//!   studies — not to be confused with the *design-side*
//!   `ftqs_core::FaultModel`, which is the `(k, µ)` contract).
//! * [`OnlineScheduler`] — the runtime of the paper's §3: executes a
//!   [`QuasiStaticTree`](ftqs_core::QuasiStaticTree), re-executing faulted
//!   processes inside the shared recovery slack and switching schedules on
//!   completion-time conditions. Out-of-model scenarios (more than `k`
//!   faults, WCET overruns) degrade gracefully and are labelled with a
//!   [`DegradationVerdict`].
//! * [`MonteCarlo`] — the 20,000-scenario evaluation harness of §6, with
//!   per-intensity degradation aggregation for the robustness bench.
//! * [`Trace`] — per-cycle event logs for inspection and debugging.
//!
//! ```
//! use ftqs_core::{Engine, SynthesisRequest};
//! use ftqs_sim::{MonteCarlo, OnlineScheduler, ExecutionScenario};
//! # use ftqs_core::{Application, ExecutionTimes, FaultModel, Time, UtilityFunction};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = Application::builder(Time::from_ms(300), FaultModel::new(1, Time::from_ms(10)));
//! # b.add_hard("P1", ExecutionTimes::uniform(30.into(), 70.into())?, Time::from_ms(180));
//! # let app = b.build()?;
//! let tree = Engine::new()
//!     .session()
//!     .synthesize(&app, &SynthesisRequest::ftqs(8))?
//!     .into_tree();
//! let mc = MonteCarlo { scenarios: 1_000, seed: 1, threads: 2 };
//! let eval = mc.evaluate(&app, &tree, 1); // scenarios with one fault
//! assert_eq!(eval.deadline_misses, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gantt;
pub mod greedy;
pub mod montecarlo;
pub mod online;
pub mod scenario;
pub mod stats;
pub mod trace;

pub use greedy::{GreedyOnlineScheduler, GreedyOutcome};
pub use montecarlo::{Evaluation, MonteCarlo};
pub use online::{DegradationVerdict, OnlineScheduler, SimOutcome};
pub use scenario::{ExecutionScenario, FaultModel, ScenarioSampler, FAULT_MODEL_NAMES};
pub use trace::{DropReason, Trace, TraceEvent};
