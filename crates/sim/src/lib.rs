//! # ftqs-sim — online scheduler runtime and Monte Carlo evaluation
//!
//! This crate is the *execution* side of the DATE 2008 reproduction: given
//! the schedules synthesized by `ftqs-core`, it simulates operation cycles
//! of the application — actual execution times, transient faults with
//! recovery, runtime dropping of soft processes, and quasi-static schedule
//! switching — and aggregates utility statistics over many random
//! scenarios.
//!
//! * [`ExecutionScenario`] / [`ScenarioSampler`] — one concrete outcome of
//!   the environment (per-attempt durations, fault plan), drawn from a
//!   pluggable [`FaultModel`] (independent-uniform as in the paper, plus
//!   bursty, intermittent and WCET-stress variants for robustness
//!   studies — not to be confused with the *design-side*
//!   `ftqs_core::FaultModel`, which is the `(k, µ)` contract).
//! * [`OnlineScheduler`] — the runtime of the paper's §3: executes a
//!   [`QuasiStaticTree`](ftqs_core::QuasiStaticTree), re-executing faulted
//!   processes inside the shared recovery slack and switching schedules on
//!   completion-time conditions. Out-of-model scenarios (more than `k`
//!   faults, WCET overruns) degrade gracefully and are labelled with a
//!   [`DegradationVerdict`].
//! * [`MonteCarlo`] — the 20,000-scenario evaluation harness of §6, with
//!   per-intensity degradation aggregation for the robustness bench.
//! * [`Trace`] — per-cycle event logs for inspection and debugging.
//!
//! # Runtime: the flat image and batched execution
//!
//! [`OnlineScheduler`] is the readable *reference* runtime;
//! [`FlatRuntime`] + [`BatchRunner`] (module [`runtime`]) are the
//! production path every Monte Carlo evaluation runs on. The division of
//! labour:
//!
//! * **Flat image layout** — [`FlatRuntime`] is built once per tree and
//!   holds everything the scenario loop touches as dense
//!   structure-of-arrays columns: per-process WCET/µ/deadline/compiled
//!   utility and CSR predecessor lists; per-node CSR ranges of schedule
//!   entries and static drops; per-entry re-execution allowances,
//!   *fully precomputed* latest-start tables (`k + 1` values per entry),
//!   and CSR-sliced switch arcs. The scenario loop performs no
//!   `TreeNodeId` pointer chasing, no per-node `Vec` walks, and no
//!   `Application` accessor calls.
//! * **Batching** — [`BatchRunner`] shares one read-only flat image
//!   across all worker threads; each worker reuses a
//!   [`runtime::RunScratch`] (completions/dropped/stale-coefficient
//!   tables) and a [`FlatScenario`] buffer across its whole range, so
//!   steady-state execution is allocation-free. Trace recording is
//!   opt-in through the [`trace::EventSink`] generic — batches pass
//!   [`trace::NoTrace`] and the event work compiles away.
//! * **RNG-stream contract** — scenario `i` of a run with base seed `s`
//!   always draws from a fresh stream seeded
//!   [`montecarlo::scenario_seed`]`(s, i)`, independent of thread count
//!   and batch shape, so results are thread-count invariant and every
//!   scheduler faces identical environments. Sweeps
//!   ([`MonteCarlo::evaluate_fault_sweep`] /
//!   [`MonteCarlo::evaluate_intensity_sweep`]) additionally hold the
//!   attempt-table width fixed at `max(k, max intensity) + 1` across
//!   columns (**common random numbers**): every column consumes the same
//!   duration draws and column deltas are pure fault effects.
//!
//! The flat runtime is pinned **bit-identical** to [`OnlineScheduler`] —
//! utilities, verdicts, completions *and traces* — by the
//! `flat_runtime` integration suite, across fault models × policies ×
//! in/out-of-model intensities, in both feature configurations.
//!
//! ```
//! use ftqs_core::{Engine, SynthesisRequest};
//! use ftqs_sim::{MonteCarlo, OnlineScheduler, ExecutionScenario};
//! # use ftqs_core::{Application, ExecutionTimes, FaultModel, Time, UtilityFunction};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = Application::builder(Time::from_ms(300), FaultModel::new(1, Time::from_ms(10)));
//! # b.add_hard("P1", ExecutionTimes::uniform(30.into(), 70.into())?, Time::from_ms(180));
//! # let app = b.build()?;
//! let tree = Engine::new()
//!     .session()
//!     .synthesize(&app, &SynthesisRequest::ftqs(8))?
//!     .into_tree();
//! let mc = MonteCarlo { scenarios: 1_000, seed: 1, threads: 2 };
//! let eval = mc.evaluate(&app, &tree, 1); // scenarios with one fault
//! assert_eq!(eval.deadline_misses, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gantt;
pub mod greedy;
pub mod montecarlo;
pub mod online;
pub mod runtime;
pub mod scenario;
pub mod stats;
pub mod trace;

pub use greedy::{GreedyOnlineScheduler, GreedyOutcome};
pub use montecarlo::{Evaluation, MonteCarlo};
pub use online::{DegradationVerdict, OnlineScheduler, SimOutcome};
pub use runtime::{BatchRunner, CycleOutcome, FlatRuntime, RunScratch};
pub use scenario::{
    ExecutionScenario, FaultModel, FlatScenario, ScenarioSampler, ScenarioView, FAULT_MODEL_NAMES,
};
pub use trace::{DropReason, EventSink, NoTrace, Trace, TraceEvent};
