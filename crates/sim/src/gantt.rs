//! ASCII Gantt rendering of simulated cycles.
//!
//! Turns a [`Trace`] into a proportional text chart — the
//! fastest way to see where recovery slack went, which soft processes were
//! dropped, and where a schedule switch happened.

use crate::trace::{Trace, TraceEvent};
use ftqs_core::{Application, Time};
use std::fmt::Write as _;

/// Renders the executions of `trace` as an ASCII Gantt chart, `width`
/// characters wide (the time axis is scaled to the last event).
///
/// Execution attempts draw as `=`, recovery overhead as `~`, and the final
/// completion as `|`. Dropped processes get a `(dropped: reason)` note.
///
/// # Example
///
/// ```
/// use ftqs_core::{Engine, SynthesisRequest};
/// use ftqs_sim::{gantt, ExecutionScenario, OnlineScheduler};
/// # use ftqs_core::{Application, ExecutionTimes, FaultModel, Time, UtilityFunction};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = Application::builder(Time::from_ms(300), FaultModel::new(1, Time::from_ms(10)));
/// # b.add_hard("P1", ExecutionTimes::uniform(30.into(), 70.into())?, Time::from_ms(180));
/// # let app = b.build()?;
/// let report = Engine::new().session().synthesize(&app, &SynthesisRequest::ftss())?;
/// let out =
///     OnlineScheduler::run_static(&app, report.root_schedule(), &ExecutionScenario::average_case(&app));
/// let chart = gantt::render(&app, &out.trace, 60);
/// assert!(chart.contains("P1"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render(app: &Application, trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let horizon = trace
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Started { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Switched { at, .. }
            | TraceEvent::DeadlineMiss { at, .. } => *at,
        })
        .max()
        .unwrap_or(Time::ZERO)
        .as_ms()
        .max(1);
    let col = |t: Time| ((t.as_ms() * (width as u64 - 1)) / horizon) as usize;

    // Collect per-process execution segments.
    struct Row {
        name: String,
        segments: Vec<(usize, usize)>, // start col, end col of an attempt
        faults: Vec<usize>,            // fault-detection columns
        note: Option<String>,
    }
    let mut rows: Vec<Row> = app
        .processes()
        .map(|p| Row {
            name: app.process(p).name().to_string(),
            segments: Vec::new(),
            faults: Vec::new(),
            note: None,
        })
        .collect();

    let mut open: Vec<Option<Time>> = vec![None; app.len()];
    for e in trace.events() {
        match e {
            TraceEvent::Started { process, at, .. } => {
                open[process.index()] = Some(*at);
            }
            TraceEvent::Completed { process, at, .. } => {
                if let Some(s) = open[process.index()].take() {
                    rows[process.index()].segments.push((col(s), col(*at)));
                }
            }
            TraceEvent::Fault { process, at, .. } => {
                if let Some(s) = open[process.index()].take() {
                    rows[process.index()].segments.push((col(s), col(*at)));
                    rows[process.index()].faults.push(col(*at));
                }
            }
            TraceEvent::Dropped {
                process, reason, ..
            } => {
                rows[process.index()].note = Some(format!("(dropped: {reason})"));
            }
            TraceEvent::DeadlineMiss { process, .. } => {
                rows[process.index()].note = Some("(MISSED DEADLINE)".to_string());
            }
            TraceEvent::Switched { .. } => {}
        }
    }

    let name_width = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:name_width$} 0{}{}",
        "",
        " ".repeat(width.saturating_sub(horizon.to_string().len() + 1)),
        horizon
    );
    for row in &rows {
        let mut lane = vec![' '; width];
        for &(s, e) in &row.segments {
            let e = e.min(width - 1);
            for cell in lane.iter_mut().take(e + 1).skip(s) {
                if *cell == ' ' {
                    *cell = '=';
                }
            }
            lane[e] = '|';
        }
        for &f in &row.faults {
            lane[f.min(width - 1)] = 'x';
        }
        let lane: String = lane.into_iter().collect();
        match &row.note {
            Some(n) => {
                let _ = writeln!(out, "{:name_width$} {} {}", row.name, lane.trim_end(), n);
            }
            None => {
                let _ = writeln!(out, "{:name_width$} {}", row.name, lane.trim_end());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineScheduler;
    use crate::scenario::ExecutionScenario;
    use ftqs_core::{
        Application, Engine, ExecutionTimes, FSchedule, FaultModel, SynthesisRequest,
        UtilityFunction,
    };

    fn synth_ftss(app: &Application) -> FSchedule {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftss())
            .unwrap()
            .root_schedule()
            .clone()
    }

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn app() -> Application {
        let mut b = Application::builder(t(300), FaultModel::new(1, t(10)));
        let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(t(30), t(70)).unwrap(),
            UtilityFunction::constant(10.0).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn renders_all_process_rows() {
        let app = app();
        let s = synth_ftss(&app);
        let out = OnlineScheduler::run_static(&app, &s, &ExecutionScenario::average_case(&app));
        let chart = render(&app, &out.trace, 60);
        assert!(chart.contains("P1"));
        assert!(chart.contains("P2"));
        assert!(chart.contains('='));
        assert!(chart.contains('|'));
    }

    #[test]
    fn faulty_run_marks_fault_position() {
        let app = app();
        let s = synth_ftss(&app);
        let sc = ExecutionScenario::from_tables(
            vec![vec![t(70); 2], vec![t(50); 2]],
            vec![vec![true, false], vec![false, false]],
        );
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        let chart = render(&app, &out.trace, 60);
        assert!(chart.contains('x'), "fault marker missing:\n{chart}");
    }

    #[test]
    fn empty_trace_renders_axis_only() {
        let app = app();
        let chart = render(&app, &Trace::new(), 40);
        assert!(chart.lines().count() >= 3);
    }

    #[test]
    fn dropped_processes_carry_a_note() {
        let app = app();
        let mut trace = Trace::new();
        trace.push(TraceEvent::Dropped {
            process: ftqs_graph::NodeId::from_index(1),
            at: t(50),
            reason: crate::trace::DropReason::PastLatestStart,
        });
        let chart = render(&app, &trace, 40);
        assert!(chart.contains("(dropped: past latest start)"));
    }
}
