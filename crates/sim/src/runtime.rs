//! The flat runtime: a cache-friendly structure-of-arrays image of a
//! synthesized [`QuasiStaticTree`] plus a batched, allocation-free Monte
//! Carlo executor on top of it.
//!
//! [`crate::OnlineScheduler`] is the *reference* runtime: readable,
//! event-traced, and pinned to the paper's semantics by the unit suite.
//! Its scenario loop, however, chases `TreeNodeId` indirections through
//! the arena, re-reads `Application` accessors (criticality, utility,
//! predecessor lists) per entry, evaluates latest-start bounds through
//! `ScheduleAnalysis` method calls, and allocates three `vec![...]`s plus
//! a [`Trace`] per scenario. At millions of scenarios those
//! costs dominate.
//!
//! [`FlatRuntime`] is built **once** per tree and flattens everything the
//! scenario loop touches into dense arrays:
//!
//! * per process: WCET, recovery overhead µ, deadline (saturated to
//!   `Time::MAX` when absent), the compiled utility handle, and the
//!   predecessor lists in CSR form (`pred_start` offsets into `preds`,
//!   preserving graph iteration order so stale-coefficient sums keep
//!   their exact f64 addition order);
//! * per tree node: CSR ranges of its schedule entries and static drops;
//! * per flattened entry: one packed record (process index, criticality,
//!   re-execution allowance, switch-arc range — everything the loop
//!   reads per entry in a single indexed load), the **fully
//!   precomputed latest-start table** (`k + 1` values, the `latest_start`
//!   bound for every remaining-budget value, including the soft period
//!   cap), and the CSR-sliced switch arcs conditioned on this entry
//!   (`lo`/`hi`/`child` columns — arc evaluation is a linear scan over a
//!   contiguous slice).
//!
//! [`FlatRuntime::run_cycle`] executes one scenario against that image
//! with zero allocation: per-worker state lives in a reusable
//! [`RunScratch`], events go to an [`EventSink`] generic (the batch path
//! passes [`NoTrace`], which compiles the event work away), and scenario
//! data is read through the [`ScenarioView`] trait (the batch path passes
//! the flat, reusable [`FlatScenario`] buffer). The loop body mirrors
//! `OnlineScheduler::run` statement for statement — same branch
//! structure, same f64 operation order — so outcomes, verdicts, utilities
//! and traces are **bit-identical** to the reference (pinned by the
//! `flat_runtime` integration suite across fault models, policies, and
//! in/out-of-model intensities, in both feature configurations).
//!
//! [`BatchRunner`] adds the Monte Carlo batching contract on top (see
//! `crate::montecarlo` for the RNG-stream contract it shares with the
//! reference harness): scenario `i` always draws from a fresh stream
//! seeded by `scenario_seed(base, i)`, so results are thread-count
//! invariant, and an explicit attempt-table width provides common random
//! numbers across intensity sweeps.

use crate::montecarlo::{scenario_seed, Evaluation, MonteCarlo};
use crate::online::{DegradationVerdict, SimOutcome};
use crate::scenario::{ExecutionScenario, FaultModel, FlatScenario, ScenarioSampler, ScenarioView};
use crate::trace::{DropReason, EventSink, NoTrace, Trace, TraceEvent};
use ftqs_core::{Application, CompiledUtility, QuasiStaticTree, ScheduleAnalysis, Time};
use ftqs_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flat structure-of-arrays image of one application + quasi-static tree,
/// ready for batched scenario execution. See the module docs for the
/// layout.
#[derive(Debug, Clone)]
pub struct FlatRuntime {
    /// Number of processes.
    n: usize,
    /// Design fault budget.
    k: usize,

    // Per-process columns (index = node index). The WCET has no column:
    // it is duplicated into each entry's [`EntryRec`] (the overrun check
    // reads it per attempt).
    mu: Vec<Time>,
    /// `Time::MAX` encodes "no deadline" (soft processes) — the miss
    /// check `at > deadline` then never fires.
    deadline: Vec<Time>,
    utility: Vec<Option<CompiledUtility>>,
    /// CSR offsets into `preds`: predecessors of process `p` are
    /// `preds[pred_start[p]..pred_start[p + 1]]`, in graph iteration
    /// order (the stale-coefficient f64 sum order).
    pred_start: Vec<u32>,
    preds: Vec<u32>,

    // Per-node CSR ranges.
    root: u32,
    /// Entries of node `v` are the flat indices
    /// `entry_start[v]..entry_start[v + 1]`.
    entry_start: Vec<u32>,
    /// Static drops of node `v` are `drops[drop_start[v]..drop_start[v+1]]`.
    drop_start: Vec<u32>,
    drops: Vec<u32>,

    /// Packed per-flattened-entry metadata.
    entries: Vec<EntryRec>,
    /// Precomputed latest-start bounds, stride `k + 1`: entry `e` with
    /// remaining budget `r` reads `entry_lst[e * (k + 1) + r]`. Includes
    /// the soft period cap, i.e. exactly `ScheduleAnalysis::latest_start`.
    entry_lst: Vec<Time>,
    /// Switch-arc columns, sliced per entry by [`EntryRec`]'s
    /// `arc_start..arc_end` range, in the node's arc order (first match
    /// wins, as in `QuasiStaticTree::switch_target`).
    arc_lo: Vec<Time>,
    arc_hi: Vec<Time>,
    arc_child: Vec<u32>,
}

/// Everything [`FlatRuntime::run_cycle`] reads per schedule entry, packed
/// into one record so the per-entry cost is a single bounds-checked load
/// (the columnar layout paid five, on as many cache lines).
#[derive(Debug, Clone, Copy)]
struct EntryRec {
    /// The process's WCET, duplicated from the per-process column — read
    /// once per attempt for overrun detection.
    wcet: Time,
    /// Node index of the scheduled process.
    process: u32,
    /// Re-execution allowance (`ScheduleEntry::reexecutions`).
    reexec: u32,
    /// Start of this entry's conditioned switch arcs in the arc columns.
    arc_start: u32,
    /// End (exclusive) of this entry's conditioned switch arcs.
    arc_end: u32,
    /// Whether the process is hard (never dropped, deadline-checked).
    is_hard: bool,
}

impl FlatRuntime {
    /// Builds the flat image of `tree` over `app`, deriving the per-node
    /// schedule analyses internally.
    #[must_use]
    pub fn new(app: &Application, tree: &QuasiStaticTree) -> Self {
        let analyses = tree.analyses(app);
        FlatRuntime::with_analyses(app, tree, &analyses)
    }

    /// Builds the flat image from precomputed analyses (one per tree
    /// node, as returned by `QuasiStaticTree::analyses`).
    ///
    /// # Panics
    ///
    /// Panics if `analyses` does not match the tree's nodes.
    #[must_use]
    pub fn with_analyses(
        app: &Application,
        tree: &QuasiStaticTree,
        analyses: &[ScheduleAnalysis],
    ) -> Self {
        assert_eq!(analyses.len(), tree.len(), "one analysis per tree node");
        let n = app.len();
        let k = app.faults().k;

        // Application image.
        let mut wcet = Vec::with_capacity(n);
        let mut mu = Vec::with_capacity(n);
        let mut deadline = Vec::with_capacity(n);
        let mut utility = Vec::with_capacity(n);
        let mut pred_start = Vec::with_capacity(n + 1);
        let mut preds: Vec<u32> = Vec::new();
        for p in app.processes() {
            let proc = app.process(p);
            wcet.push(proc.times().wcet());
            mu.push(app.recovery_overhead(p));
            deadline.push(proc.criticality().deadline().unwrap_or(Time::MAX));
            utility.push(proc.criticality().utility().map(|u| u.compiled()));
            pred_start.push(preds.len() as u32);
            preds.extend(app.graph().predecessors(p).map(|q| q.index() as u32));
        }
        pred_start.push(preds.len() as u32);

        // Tree image.
        let total_entries = tree.total_entries();
        let mut entry_start = Vec::with_capacity(tree.len() + 1);
        let mut drop_start = Vec::with_capacity(tree.len() + 1);
        let mut drops: Vec<u32> = Vec::with_capacity(tree.total_static_drops());
        let mut entries: Vec<EntryRec> = Vec::with_capacity(total_entries);
        let mut entry_lst = Vec::with_capacity(total_entries * (k + 1));
        let mut arc_lo = Vec::new();
        let mut arc_hi = Vec::new();
        let mut arc_child = Vec::new();

        for (id, node, schedule) in tree.iter_schedules() {
            entry_start.push(entries.len() as u32);
            drop_start.push(drops.len() as u32);
            drops.extend(
                schedule
                    .statically_dropped()
                    .iter()
                    .map(|d| d.index() as u32),
            );
            let analysis = &analyses[id];
            for (pos, entry) in schedule.entries().iter().enumerate() {
                for r in 0..=k {
                    entry_lst.push(analysis.latest_start(app, entry, pos, r));
                }
                let arc_start = arc_lo.len() as u32;
                // Arcs conditioned on this entry, preserving the node's
                // arc order so "first matching arc" is unchanged.
                for arc in node.arcs.iter().filter(|a| a.pivot_pos == pos) {
                    arc_lo.push(arc.lo);
                    arc_hi.push(arc.hi);
                    arc_child.push(arc.child as u32);
                }
                entries.push(EntryRec {
                    wcet: wcet[entry.process.index()],
                    process: entry.process.index() as u32,
                    reexec: entry.reexecutions as u32,
                    arc_start,
                    arc_end: arc_lo.len() as u32,
                    is_hard: app.is_hard(entry.process),
                });
            }
        }
        entry_start.push(entries.len() as u32);
        drop_start.push(drops.len() as u32);

        FlatRuntime {
            n,
            k,
            mu,
            deadline,
            utility,
            pred_start,
            preds,
            root: tree.root() as u32,
            entry_start,
            drop_start,
            drops,
            entries,
            entry_lst,
            arc_lo,
            arc_hi,
            arc_child,
        }
    }

    /// Number of processes in the imaged application.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The design fault budget `k` the latest-start tables cover.
    #[must_use]
    pub fn fault_budget(&self) -> usize {
        self.k
    }

    /// Executes one scenario against the flat image. Allocation-free:
    /// per-cycle state lives in `scratch` (reused across calls), events
    /// go to `sink` (pass [`NoTrace`] to compile them away).
    ///
    /// Semantics are bit-identical to
    /// [`OnlineScheduler::run`](crate::OnlineScheduler::run); completion
    /// times remain readable from [`RunScratch::completions`] afterwards.
    pub fn run_cycle<V: ScenarioView, S: EventSink>(
        &self,
        scenario: &V,
        scratch: &mut RunScratch,
        sink: &mut S,
    ) -> CycleOutcome {
        scratch.reset(self.n);
        let k = self.k;
        let stride = k + 1;
        let completions = &mut scratch.completions;
        let dropped = &mut scratch.dropped;
        let alpha = &mut scratch.alpha;

        let mut node = self.root as usize;
        let mut now = Time::ZERO;
        let mut faults_seen = 0usize;
        let mut utility = 0.0f64;
        let mut deadline_miss: Option<(NodeId, Time, Time)> = None;
        let mut wcet_overruns = 0usize;
        let mut switches = 0usize;

        // Register the root schedule's static drops.
        for &d in &self.drops[self.drop_start[node] as usize..self.drop_start[node + 1] as usize] {
            dropped[d as usize] = true;
            sink.record(TraceEvent::Dropped {
                process: NodeId::from_index(d as usize),
                at: now,
                reason: DropReason::Static,
            });
        }

        // Walk the current node's flat entry range directly; a schedule
        // switch re-aims `e..end` at the child's range.
        let mut e = self.entry_start[node] as usize;
        let mut end = self.entry_start[node + 1] as usize;
        while e < end {
            let rec = self.entries[e];
            let p = rec.process as usize;
            let pid = NodeId::from_index(p);
            let hard = rec.is_hard;
            // Saturate: out-of-model scenarios can push faults_seen past
            // k, and the latest-start tables are only defined up to k.
            let remaining = k.saturating_sub(faults_seen);

            // Runtime dropping decision for soft processes.
            if !hard {
                let lst = self.entry_lst[e * stride + remaining];
                if now > lst {
                    dropped[p] = true;
                    sink.record(TraceEvent::Dropped {
                        process: pid,
                        at: now,
                        reason: DropReason::PastLatestStart,
                    });
                    e += 1;
                    continue;
                }
            }

            // Execute, re-executing on faults as allowed.
            let mut attempt = 0usize;
            let completed_at: Option<Time> = loop {
                sink.record(TraceEvent::Started {
                    process: pid,
                    attempt,
                    at: now,
                });
                let (d, hit) = scenario.attempt(p, attempt);
                if d > rec.wcet {
                    wcet_overruns += 1;
                }
                now += d;
                if !hit {
                    break Some(now);
                }
                faults_seen += 1;
                sink.record(TraceEvent::Fault {
                    process: pid,
                    attempt,
                    at: now,
                });
                let mu = self.mu[p];
                let may_recover = if hard {
                    true // hard processes always re-execute, even past the
                         // budget — degradation shows up as a late (or
                         // missed) deadline, never an abandoned hard process
                } else {
                    let lst = self.entry_lst[e * stride + k.saturating_sub(faults_seen)];
                    attempt < rec.reexec as usize && now + mu <= lst
                };
                if !may_recover {
                    break None;
                }
                now += mu; // recovery overhead before the re-execution
                attempt += 1;
            };

            match completed_at {
                Some(at) => {
                    completions[p] = Some(at);
                    // A schedule switch may revive a process an earlier
                    // node dropped statically; completing clears the mark.
                    dropped[p] = false;
                    // Stale coefficient: predecessors are all decided by
                    // now (the schedule respects precedence). Summed in
                    // stored (graph) order — the reference's f64 order.
                    let ps = self.pred_start[p] as usize;
                    let pe = self.pred_start[p + 1] as usize;
                    let mut sum = 0.0f64;
                    for &q in &self.preds[ps..pe] {
                        let q = q as usize;
                        sum += if dropped[q] { 0.0 } else { alpha[q] };
                    }
                    let a = (1.0 + sum) / (1.0 + (pe - ps) as f64);
                    alpha[p] = a;
                    let credited = match &self.utility[p] {
                        Some(u) => a * u.value(at),
                        None => 0.0,
                    };
                    utility += credited;
                    sink.record(TraceEvent::Completed {
                        process: pid,
                        at,
                        utility: credited,
                    });
                    let dl = self.deadline[p];
                    if at > dl {
                        sink.record(TraceEvent::DeadlineMiss {
                            process: pid,
                            at,
                            deadline: dl,
                        });
                        if deadline_miss.is_none() {
                            deadline_miss = Some((pid, dl, at));
                        }
                    }
                    // Consult switch arcs on the final completion.
                    let lo = rec.arc_start as usize;
                    let hi = rec.arc_end as usize;
                    let mut target: Option<usize> = None;
                    for i in lo..hi {
                        if self.arc_lo[i] <= at && at <= self.arc_hi[i] {
                            target = Some(self.arc_child[i] as usize);
                            break;
                        }
                    }
                    if let Some(next) = target {
                        sink.record(TraceEvent::Switched {
                            from: node,
                            to: next,
                            at,
                        });
                        switches += 1;
                        node = next;
                        e = self.entry_start[node] as usize;
                        end = self.entry_start[node + 1] as usize;
                        // The child schedule carries its own static drops.
                        let ds = self.drop_start[node] as usize;
                        let de = self.drop_start[node + 1] as usize;
                        for &d in &self.drops[ds..de] {
                            let d = d as usize;
                            if !dropped[d] && completions[d].is_none() {
                                dropped[d] = true;
                                sink.record(TraceEvent::Dropped {
                                    process: NodeId::from_index(d),
                                    at: now,
                                    reason: DropReason::Static,
                                });
                            }
                        }
                        continue;
                    }
                    e += 1;
                }
                None => {
                    dropped[p] = true;
                    sink.record(TraceEvent::Dropped {
                        process: pid,
                        at: now,
                        reason: DropReason::FaultNoRecovery,
                    });
                    e += 1;
                }
            }
        }

        let verdict = match deadline_miss {
            Some((process, deadline, completed_at)) => DegradationVerdict::HardMiss {
                process,
                deadline,
                completed_at,
            },
            None if faults_seen > k || wcet_overruns > 0 => DegradationVerdict::Degraded {
                faults_beyond_budget: faults_seen.saturating_sub(k),
                wcet_overruns,
            },
            None => DegradationVerdict::InModel,
        };
        CycleOutcome {
            utility,
            deadline_miss: deadline_miss.map(|(p, _, _)| p),
            makespan: now,
            faults_hit: faults_seen,
            wcet_overruns,
            switches,
            verdict,
        }
    }

    /// Convenience single-scenario entry point returning the same
    /// [`SimOutcome`] (full trace, completion table) as
    /// [`OnlineScheduler::run`](crate::OnlineScheduler::run). Allocates
    /// per call; batches should use [`FlatRuntime::run_cycle`] or
    /// [`BatchRunner`].
    #[must_use]
    pub fn run(&self, scenario: &ExecutionScenario) -> SimOutcome {
        let mut scratch = RunScratch::new();
        let mut trace = Trace::new();
        let out = self.run_cycle(scenario, &mut scratch, &mut trace);
        SimOutcome {
            utility: out.utility,
            completions: scratch.completions,
            deadline_miss: out.deadline_miss,
            makespan: out.makespan,
            faults_hit: out.faults_hit,
            wcet_overruns: out.wcet_overruns,
            verdict: out.verdict,
            trace,
        }
    }
}

/// Reusable per-worker cycle state for [`FlatRuntime::run_cycle`]: the
/// completion, dropped and stale-coefficient tables the reference runtime
/// allocates per scenario.
#[derive(Debug, Clone, Default)]
pub struct RunScratch {
    completions: Vec<Option<Time>>,
    dropped: Vec<bool>,
    alpha: Vec<f64>,
}

impl RunScratch {
    /// An empty scratch; the first cycle sizes it.
    #[must_use]
    pub fn new() -> Self {
        RunScratch::default()
    }

    /// Completion time per process from the most recent cycle (`None` if
    /// dropped or never reached), indexed by node index.
    #[must_use]
    pub fn completions(&self) -> &[Option<Time>] {
        &self.completions
    }

    fn reset(&mut self, n: usize) {
        // Steady-state batches hit the same `n` every cycle: overwrite in
        // place (a straight memset) instead of clear + re-extend.
        if self.completions.len() == n {
            self.completions.fill(None);
            self.dropped.fill(false);
            self.alpha.fill(0.0);
        } else {
            self.completions.clear();
            self.completions.resize(n, None);
            self.dropped.clear();
            self.dropped.resize(n, false);
            self.alpha.clear();
            self.alpha.resize(n, 0.0);
        }
    }
}

/// Result of one [`FlatRuntime::run_cycle`] — [`SimOutcome`] minus the
/// allocated parts (trace and completion table), plus the switch count
/// the reference derives from its trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// Total utility produced by soft processes (stale-scaled).
    pub utility: f64,
    /// A hard process that missed its deadline, if any.
    pub deadline_miss: Option<NodeId>,
    /// Time at which the last process finished.
    pub makespan: Time,
    /// Faults that actually materialized (hit an executing process).
    pub faults_hit: usize,
    /// Execution attempts whose duration exceeded the process WCET.
    pub wcet_overruns: usize,
    /// Schedule switches taken.
    pub switches: usize,
    /// How gracefully the cycle degraded relative to the design contract.
    pub verdict: DegradationVerdict,
}

/// Batched Monte Carlo executor over a [`FlatRuntime`].
///
/// One shared, read-only flat image serves every worker thread; each
/// worker owns a [`RunScratch`] + [`FlatScenario`] pair reused across its
/// whole scenario range, so the steady-state loop performs no heap
/// allocation. Scenario `i` always draws from a fresh RNG stream seeded
/// by `scenario_seed(base_seed, i)` — the same contract as
/// [`MonteCarlo`] — so results are invariant under the thread count and
/// identical to the reference harness.
#[derive(Debug)]
pub struct BatchRunner<'a> {
    app: &'a Application,
    runtime: &'a FlatRuntime,
    model: FaultModel,
}

impl<'a> BatchRunner<'a> {
    /// Creates a runner drawing scenarios for `app` from `model` and
    /// executing them against `runtime`.
    #[must_use]
    pub fn new(app: &'a Application, runtime: &'a FlatRuntime, model: FaultModel) -> Self {
        BatchRunner {
            app,
            runtime,
            model,
        }
    }

    /// Evaluates `config.scenarios` scenarios, each planning exactly
    /// `fault_count` faults — the batched equivalent of
    /// [`MonteCarlo::evaluate_with_model`], with attempt tables sized to
    /// `max(k, fault_count) + 1` exactly as the reference sampler does.
    #[must_use]
    pub fn evaluate(&self, config: &MonteCarlo, fault_count: usize) -> Evaluation {
        let attempts = self.app.faults().k.max(fault_count) + 1;
        self.evaluate_with_attempts(config, fault_count, attempts)
    }

    /// [`BatchRunner::evaluate`] with an explicit attempt-table width —
    /// the common-random-numbers hook: hold `attempts` fixed at
    /// `max(k, max intensity) + 1` across a sweep and every column
    /// consumes identical duration draws (see
    /// [`ScenarioSampler::sample_into_with_attempts`]).
    ///
    /// # Panics
    ///
    /// Panics (in the workers) if `attempts < max(k, fault_count) + 1`.
    #[must_use]
    pub fn evaluate_with_attempts(
        &self,
        config: &MonteCarlo,
        fault_count: usize,
        attempts: usize,
    ) -> Evaluation {
        let threads = crate::montecarlo::effective_threads(config.threads, config.scenarios);
        if threads <= 1 {
            return self.evaluate_range(fault_count, attempts, config.seed, 0, config.scenarios);
        }
        let chunk = config.scenarios.div_ceil(threads);
        let mut partials: Vec<Evaluation> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(config.scenarios);
                if lo >= hi {
                    break;
                }
                let seed = config.seed;
                handles.push(
                    scope.spawn(move || self.evaluate_range(fault_count, attempts, seed, lo, hi)),
                );
            }
            for h in handles {
                partials.push(h.join().expect("worker thread panicked"));
            }
        });

        let mut total = Evaluation::default();
        for p in &partials {
            total.merge(p);
        }
        total
    }

    /// Evaluates the scenario index range `lo..hi` — the per-thread
    /// worker. Scratch and scenario buffers are allocated once here and
    /// reused for every scenario of the range.
    fn evaluate_range(
        &self,
        fault_count: usize,
        attempts: usize,
        seed: u64,
        lo: usize,
        hi: usize,
    ) -> Evaluation {
        let sampler = ScenarioSampler::with_model(self.app, self.model);
        let mut scratch = RunScratch::new();
        let mut scenario = FlatScenario::new();
        let mut eval = Evaluation::default();
        for i in lo..hi {
            let mut rng = StdRng::seed_from_u64(scenario_seed(seed, i as u64));
            sampler.sample_into_with_attempts(&mut rng, fault_count, attempts, &mut scenario);
            let out = self
                .runtime
                .run_cycle(&scenario, &mut scratch, &mut NoTrace);
            eval.record(&out);
        }
        eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineScheduler;
    use ftqs_core::{
        Engine, ExecutionTimes, FaultModel as DesignFaults, SynthesisRequest, UtilityFunction,
    };

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn fig1_app() -> Application {
        let mut b = Application::builder(t(300), DesignFaults::new(1, t(10)));
        let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(t(30), t(70)).unwrap(),
            UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
        );
        let p3 = b.add_soft(
            "P3",
            ExecutionTimes::uniform(t(40), t(80)).unwrap(),
            UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.add_dependency(p1, p3).unwrap();
        b.build().unwrap()
    }

    fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftqs(budget))
            .unwrap()
            .into_tree()
    }

    #[test]
    fn flat_image_shapes_match_the_tree() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let rt = FlatRuntime::new(&app, &tree);
        assert_eq!(rt.processes(), app.len());
        assert_eq!(rt.fault_budget(), app.faults().k);
        assert_eq!(rt.entries.len(), tree.total_entries());
        assert_eq!(rt.drops.len(), tree.total_static_drops());
        assert_eq!(rt.entry_start.len(), tree.len() + 1);
        assert_eq!(
            rt.entry_lst.len(),
            tree.total_entries() * (app.faults().k + 1)
        );
        let arcs: usize = tree.iter().map(|(_, n)| n.arcs.len()).sum();
        assert_eq!(rt.arc_lo.len(), arcs);
    }

    #[test]
    fn flat_run_matches_reference_on_average_case() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let reference = OnlineScheduler::new(&app, &tree);
        let rt = FlatRuntime::new(&app, &tree);
        let sc = ExecutionScenario::average_case(&app);
        let a = reference.run(&sc);
        let b = rt.run(&sc);
        assert_eq!(a.utility.to_bits(), b.utility.to_bits());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn flat_run_matches_reference_over_seeded_scenarios() {
        let app = fig1_app();
        let tree = synth_tree(&app, 6);
        let reference = OnlineScheduler::new(&app, &tree);
        let rt = FlatRuntime::new(&app, &tree);
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(99);
        for f in 0..=3 {
            for _ in 0..200 {
                let sc = sampler.sample(&mut rng, f);
                let a = reference.run(&sc);
                let b = rt.run(&sc);
                assert_eq!(a.utility.to_bits(), b.utility.to_bits());
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.completions, b.completions);
                assert_eq!(a.faults_hit, b.faults_hit);
                assert_eq!(a.trace, b.trace);
            }
        }
    }

    #[test]
    fn cycle_outcome_counts_switches() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let rt = FlatRuntime::new(&app, &tree);
        // P1 at BCET triggers the early-completion switch arc.
        let durations: Vec<Vec<Time>> = app
            .processes()
            .map(|p| vec![app.process(p).times().aet(); 2])
            .collect();
        let mut durations = durations;
        durations[0] = vec![t(30); 2];
        let sc = ExecutionScenario::from_tables(
            durations,
            app.processes().map(|_| vec![false; 2]).collect(),
        );
        let mut scratch = RunScratch::new();
        let out = rt.run_cycle(&sc, &mut scratch, &mut NoTrace);
        assert!(out.switches >= 1, "expected a schedule switch");
        assert_eq!(out.switches, rt.run(&sc).trace.switch_count());
    }

    #[test]
    fn batch_runner_matches_monte_carlo_reference() {
        let app = fig1_app();
        let tree = synth_tree(&app, 4);
        let rt = FlatRuntime::new(&app, &tree);
        let mc = MonteCarlo {
            scenarios: 150,
            seed: 77,
            threads: 1,
        };
        let runner = BatchRunner::new(&app, &rt, FaultModel::Independent);
        let batched = runner.evaluate(&mc, 1);
        let reference = mc.evaluate(&app, &tree, 1);
        assert_eq!(
            batched.utility.mean().to_bits(),
            reference.utility.mean().to_bits()
        );
        assert_eq!(batched.deadline_misses, reference.deadline_misses);
        assert_eq!(batched.degraded, reference.degraded);
    }
}
