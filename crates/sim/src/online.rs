//! The online scheduler: executes a quasi-static tree (or a single
//! f-schedule wrapped in a one-node tree) against an execution scenario.
//!
//! The runtime mirrors the paper's model:
//!
//! * processes run non-preemptively in the current schedule's order;
//! * a fault is detected at the end of the faulty execution; recovery costs
//!   µ before the re-execution starts (Fig. 3);
//! * hard processes are *always* re-executed; soft processes only while
//!   their granted allowance lasts and the restart stays within the latest
//!   safe start time (otherwise they are abandoned — dropped);
//! * a soft process whose start time exceeds its latest safe start (hard
//!   deadlines in danger, or it cannot complete within the period) is
//!   dropped and its consumers see stale inputs;
//! * after the *final* completion of each process the scheduler consults
//!   the current tree node's switch arcs and may move to a sub-schedule
//!   ("the scheduler will switch to the best one depending on the
//!   occurrence of faults and the actual execution times").
//!
//! # Degradation semantics
//!
//! The synthesized schedules are provably safe only *inside* the design
//! contract: at most `k` faults, every duration within `[bcet, wcet]`.
//! The runtime, however, must stay total when the environment breaks that
//! contract (see the out-of-model scenarios in `crate::scenario`). Rather
//! than panicking or silently mis-indexing, [`OnlineScheduler::run`]
//! always completes the cycle and labels it with a
//! [`DegradationVerdict`]:
//!
//! * **[`DegradationVerdict::InModel`]** — the materialized faults stayed
//!   within `k` and no duration exceeded its WCET. All guarantees hold;
//!   `deadline_miss` is `None` by the paper's construction. Note this is
//!   judged on *materialized* behaviour: a scenario that *plans* more
//!   than `k` faults but lands the excess on processes the scheduler
//!   drops still executes in-model.
//! * **[`DegradationVerdict::Degraded`]** — the contract was broken
//!   (faults beyond the budget and/or WCET overruns) yet every hard
//!   deadline still held; soft utility is whatever could be salvaged.
//!   Past the budget the runtime keeps its policy: hard processes always
//!   re-execute after a fault, soft processes re-execute while their
//!   allowance and latest-start bound permit, with all internal budget
//!   arithmetic saturating at zero.
//! * **[`DegradationVerdict::HardMiss`]** — a hard process completed
//!   after its deadline (the first such miss is reported, with a
//!   [`TraceEvent::DeadlineMiss`] in the trace). The cycle is still run
//!   to completion so utility/makespan describe the whole degraded
//!   cycle.
//!
//! `crate::montecarlo` aggregates these verdicts into hard-miss rates and
//! utility-degradation curves per fault intensity.

use crate::scenario::ExecutionScenario;
use crate::trace::{DropReason, EventSink, NoTrace, Trace, TraceEvent};
use ftqs_core::{Application, FSchedule, QuasiStaticTree, ScheduleAnalysis, Time, TreeNodeId};
use ftqs_graph::NodeId;

/// How gracefully one simulated cycle degraded relative to the design
/// contract (`k` faults, WCET-bounded durations) — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationVerdict {
    /// Materialized behaviour stayed within the design contract; all of
    /// the paper's guarantees hold.
    InModel,
    /// The contract was broken but every hard deadline still held; soft
    /// utility was salvaged on a best-effort basis.
    Degraded {
        /// Materialized faults beyond the design budget `k`.
        faults_beyond_budget: usize,
        /// Execution attempts whose duration exceeded the process WCET.
        wcet_overruns: usize,
    },
    /// A hard process completed after its deadline (first miss reported;
    /// the cycle still ran to completion).
    HardMiss {
        /// The hard process that missed.
        process: NodeId,
        /// Its deadline.
        deadline: Time,
        /// When it actually completed.
        completed_at: Time,
    },
}

impl DegradationVerdict {
    /// Whether this cycle kept every hard deadline.
    #[must_use]
    pub fn hard_deadlines_held(&self) -> bool {
        !matches!(self, DegradationVerdict::HardMiss { .. })
    }
}

/// Result of simulating one operation cycle.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Total utility produced by soft processes (stale-scaled).
    pub utility: f64,
    /// Completion time of each completed process (`None` if dropped or
    /// never reached), indexed by node index.
    pub completions: Vec<Option<Time>>,
    /// A hard process that missed its deadline, if any — the scheduler
    /// guarantees this stays `None` for in-model scenarios; out-of-model
    /// injection can populate it (see [`SimOutcome::verdict`]).
    pub deadline_miss: Option<NodeId>,
    /// Time at which the last process finished.
    pub makespan: Time,
    /// Faults that actually materialized (hit an executing process).
    pub faults_hit: usize,
    /// Execution attempts whose duration exceeded the process WCET
    /// (non-zero only under `FaultModel::WcetStress` or hand-built
    /// scenarios).
    pub wcet_overruns: usize,
    /// How gracefully the cycle degraded relative to the design contract.
    pub verdict: DegradationVerdict,
    /// Full event trace.
    pub trace: Trace,
}

/// Online quasi-static scheduler for one application and schedule tree.
///
/// Create once, then [`OnlineScheduler::run`] any number of scenarios —
/// the per-node analyses (latest-start tables) are precomputed.
///
/// # Example
///
/// ```
/// use ftqs_core::{Engine, SynthesisRequest};
/// use ftqs_sim::{ExecutionScenario, OnlineScheduler};
/// # use ftqs_core::{Application, ExecutionTimes, FaultModel, Time, UtilityFunction};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = Application::builder(Time::from_ms(300), FaultModel::new(1, Time::from_ms(10)));
/// # let p1 = b.add_hard("P1", ExecutionTimes::uniform(30.into(), 70.into())?, Time::from_ms(180));
/// # let app = b.build()?;
/// let tree = Engine::new()
///     .session()
///     .synthesize(&app, &SynthesisRequest::ftqs(4))?
///     .into_tree();
/// let runner = OnlineScheduler::new(&app, &tree);
/// let outcome = runner.run(&ExecutionScenario::average_case(&app));
/// assert!(outcome.deadline_miss.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnlineScheduler<'a> {
    app: &'a Application,
    tree: &'a QuasiStaticTree,
    analyses: Vec<ScheduleAnalysis>,
}

impl<'a> OnlineScheduler<'a> {
    /// Creates a scheduler for `tree` over `app`.
    #[must_use]
    pub fn new(app: &'a Application, tree: &'a QuasiStaticTree) -> Self {
        OnlineScheduler {
            app,
            tree,
            analyses: tree.analyses(app),
        }
    }

    /// Simulates one operation cycle under `scenario`, recording a full
    /// event trace.
    #[must_use]
    pub fn run(&self, scenario: &ExecutionScenario) -> SimOutcome {
        let mut trace = Trace::new();
        let mut out = self.run_with_sink(scenario, &mut trace);
        out.trace = trace;
        out
    }

    /// Simulates one operation cycle without recording events
    /// ([`SimOutcome::trace`] stays empty) — the event work compiles away
    /// entirely via the [`NoTrace`] sink.
    #[must_use]
    pub fn run_untraced(&self, scenario: &ExecutionScenario) -> SimOutcome {
        self.run_with_sink(scenario, &mut NoTrace)
    }

    /// Simulates one operation cycle, sending events to `sink`. The
    /// returned outcome carries an empty [`Trace`].
    pub fn run_with_sink<S: EventSink>(
        &self,
        scenario: &ExecutionScenario,
        sink: &mut S,
    ) -> SimOutcome {
        let app = self.app;
        let k = app.faults().k;
        let mut node: TreeNodeId = self.tree.root();
        let mut pos = 0usize;
        let mut now = Time::ZERO;
        let mut faults_seen = 0usize;

        // Per-process outcome state.
        let mut completions: Vec<Option<Time>> = vec![None; app.len()];
        let mut dropped: Vec<bool> = vec![false; app.len()];
        let mut alpha: Vec<f64> = vec![0.0; app.len()];
        let mut utility = 0.0;
        let mut deadline_miss: Option<(NodeId, Time, Time)> = None;
        let mut wcet_overruns = 0usize;

        // Register the root schedule's static drops.
        for &d in self.tree.node_schedule(node).statically_dropped() {
            dropped[d.index()] = true;
            sink.record(TraceEvent::Dropped {
                process: d,
                at: now,
                reason: DropReason::Static,
            });
        }

        loop {
            let schedule = self.tree.node_schedule(node);
            let analysis = &self.analyses[node];
            if pos >= schedule.entries().len() {
                break;
            }
            let entry = schedule.entries()[pos];
            let p = entry.process;
            let hard = app.is_hard(p);
            // Saturate: out-of-model scenarios can push faults_seen past k,
            // and the latest-start tables are only defined up to k.
            let remaining = k.saturating_sub(faults_seen);

            // Runtime dropping decision for soft processes.
            if !hard {
                let lst = analysis.latest_start(app, &entry, pos, remaining);
                if now > lst {
                    dropped[p.index()] = true;
                    sink.record(TraceEvent::Dropped {
                        process: p,
                        at: now,
                        reason: DropReason::PastLatestStart,
                    });
                    pos += 1;
                    continue;
                }
            }

            // Execute, re-executing on faults as allowed.
            let mut attempt = 0usize;
            let completed_at: Option<Time> = loop {
                sink.record(TraceEvent::Started {
                    process: p,
                    attempt,
                    at: now,
                });
                let d = scenario.duration(p, attempt);
                if d > app.process(p).times().wcet() {
                    wcet_overruns += 1;
                }
                now += d;
                if !scenario.is_faulty(p, attempt) {
                    break Some(now);
                }
                faults_seen += 1;
                sink.record(TraceEvent::Fault {
                    process: p,
                    attempt,
                    at: now,
                });
                let mu = app.recovery_overhead(p);
                let may_recover = if hard {
                    true // hard processes always re-execute, even past the
                         // budget — degradation shows up as a late (or
                         // missed) deadline, never an abandoned hard process
                } else {
                    let lst =
                        analysis.latest_start(app, &entry, pos, k.saturating_sub(faults_seen));
                    attempt < entry.reexecutions && now + mu <= lst
                };
                if !may_recover {
                    break None;
                }
                now += mu; // recovery overhead before the re-execution
                attempt += 1;
            };

            match completed_at {
                Some(at) => {
                    completions[p.index()] = Some(at);
                    // A schedule switch may revive a process an earlier node
                    // dropped statically; completing clears the mark.
                    dropped[p.index()] = false;
                    // Stale coefficient: predecessors are all decided by now
                    // (the schedule respects precedence).
                    let preds: Vec<NodeId> = app.graph().predecessors(p).collect();
                    let sum: f64 = preds
                        .iter()
                        .map(|q| {
                            if dropped[q.index()] {
                                0.0
                            } else {
                                alpha[q.index()]
                            }
                        })
                        .sum();
                    let a = (1.0 + sum) / (1.0 + preds.len() as f64);
                    alpha[p.index()] = a;
                    let credited = match app.process(p).criticality().utility() {
                        Some(u) => a * u.value(at),
                        None => 0.0,
                    };
                    utility += credited;
                    sink.record(TraceEvent::Completed {
                        process: p,
                        at,
                        utility: credited,
                    });
                    if let Some(d) = app.process(p).criticality().deadline() {
                        if at > d {
                            sink.record(TraceEvent::DeadlineMiss {
                                process: p,
                                at,
                                deadline: d,
                            });
                            if deadline_miss.is_none() {
                                deadline_miss = Some((p, d, at));
                            }
                        }
                    }
                    // Consult switch arcs on the final completion.
                    if let Some(next) = self.tree.switch_target(node, pos, at) {
                        sink.record(TraceEvent::Switched {
                            from: node,
                            to: next,
                            at,
                        });
                        node = next;
                        pos = 0;
                        // The child schedule carries its own static drops.
                        for &d in self.tree.node_schedule(node).statically_dropped() {
                            if !dropped[d.index()] && completions[d.index()].is_none() {
                                dropped[d.index()] = true;
                                sink.record(TraceEvent::Dropped {
                                    process: d,
                                    at: now,
                                    reason: DropReason::Static,
                                });
                            }
                        }
                        continue;
                    }
                    pos += 1;
                }
                None => {
                    dropped[p.index()] = true;
                    sink.record(TraceEvent::Dropped {
                        process: p,
                        at: now,
                        reason: DropReason::FaultNoRecovery,
                    });
                    pos += 1;
                }
            }
        }

        let verdict = match deadline_miss {
            Some((process, deadline, completed_at)) => DegradationVerdict::HardMiss {
                process,
                deadline,
                completed_at,
            },
            None if faults_seen > k || wcet_overruns > 0 => DegradationVerdict::Degraded {
                faults_beyond_budget: faults_seen.saturating_sub(k),
                wcet_overruns,
            },
            None => DegradationVerdict::InModel,
        };
        SimOutcome {
            utility,
            completions,
            deadline_miss: deadline_miss.map(|(p, _, _)| p),
            makespan: now,
            // Every increment of `faults_seen` records exactly one Fault
            // event, so this equals the trace's fault count without
            // consulting the (possibly absent) trace.
            faults_hit: faults_seen,
            wcet_overruns,
            verdict,
            trace: Trace::new(),
        }
    }

    /// Convenience: simulate a bare f-schedule (no tree) by wrapping it in
    /// a single-node tree.
    #[must_use]
    pub fn run_static(
        app: &Application,
        schedule: &FSchedule,
        scenario: &ExecutionScenario,
    ) -> SimOutcome {
        let tree = QuasiStaticTree::single(schedule.clone());
        OnlineScheduler::new(app, &tree).run(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{Engine, ExecutionTimes, FaultModel, SynthesisRequest, UtilityFunction};

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftqs(budget))
            .unwrap()
            .into_tree()
    }

    fn synth_ftss(app: &Application) -> FSchedule {
        Engine::new()
            .session()
            .synthesize(app, &SynthesisRequest::ftss())
            .unwrap()
            .root_schedule()
            .clone()
    }

    fn et(b: u64, w: u64) -> ExecutionTimes {
        ExecutionTimes::uniform(t(b), t(w)).unwrap()
    }

    /// The paper's Fig. 1 / Fig. 4 application.
    fn fig1_app() -> (Application, [NodeId; 3]) {
        let mut b = Application::builder(t(300), FaultModel::new(1, t(10)));
        let p1 = b.add_hard("P1", et(30, 70), t(180));
        let p2 = b.add_soft(
            "P2",
            et(30, 70),
            UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
        );
        let p3 = b.add_soft(
            "P3",
            et(40, 80),
            UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.add_dependency(p1, p3).unwrap();
        (b.build().unwrap(), [p1, p2, p3])
    }

    fn scenario_with(
        app: &Application,
        durs: &[(NodeId, [u64; 2])],
        faults: &[(NodeId, usize)],
    ) -> ExecutionScenario {
        let mut durations: Vec<Vec<Time>> = app
            .processes()
            .map(|p| {
                let w = app.process(p).times().wcet();
                vec![w; 2]
            })
            .collect();
        let mut faulty: Vec<Vec<bool>> = app.processes().map(|_| vec![false; 2]).collect();
        for &(p, ds) in durs {
            durations[p.index()] = ds.iter().map(|&d| t(d)).collect();
        }
        for &(p, a) in faults {
            faulty[p.index()][a] = true;
        }
        ExecutionScenario::from_tables(durations, faulty)
    }

    #[test]
    fn average_case_static_schedule_matches_fig4_s2() {
        // FTSS's root is S2 = P1, P3, P2; in the average case utilities are
        // U3(110) + U2(160) = 40 + 20 = 60 (Fig. 4b2).
        let (app, _) = fig1_app();
        let s = synth_ftss(&app);
        let out = OnlineScheduler::run_static(&app, &s, &ExecutionScenario::average_case(&app));
        assert_eq!(out.utility, 60.0);
        assert!(out.deadline_miss.is_none());
        assert_eq!(out.makespan, t(160));
    }

    #[test]
    fn quasi_static_tree_switches_on_early_completion() {
        // When P1 finishes at 30, the tree switches to the P2-first child
        // and harvests Fig. 4b5's utility 70 instead of 60.
        let (app, [p1, ..]) = fig1_app();
        let tree = synth_tree(&app, 4);
        let runner = OnlineScheduler::new(&app, &tree);
        let sc = scenario_with(&app, &[(p1, [30, 30])], &[]);
        // Soft processes at AET for comparability.
        let mut durations: Vec<Vec<Time>> = app
            .processes()
            .map(|p| vec![app.process(p).times().aet(); 2])
            .collect();
        durations[p1.index()] = vec![t(30); 2];
        let sc2 = ExecutionScenario::from_tables(
            durations,
            app.processes().map(|_| vec![false; 2]).collect(),
        );
        let out = runner.run(&sc2);
        assert!(out.trace.switch_count() >= 1, "expected a schedule switch");
        assert_eq!(out.utility, 70.0);
        let _ = sc;
    }

    #[test]
    fn fault_on_hard_process_triggers_reexecution() {
        let (app, [p1, ..]) = fig1_app();
        let s = synth_ftss(&app);
        // P1 faults on its first attempt (70ms), recovers (10ms), runs again
        // (70ms): completes at 150 <= 180. Worst case of Fig. 4b1/b2.
        let sc = scenario_with(&app, &[], &[(p1, 0)]);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        assert!(out.deadline_miss.is_none());
        assert_eq!(out.completions[p1.index()], Some(t(150)));
        assert_eq!(out.trace.fault_count(), 1);
    }

    #[test]
    fn soft_process_without_allowance_is_abandoned_on_fault() {
        let (app, [_, p2, p3]) = fig1_app();
        let s = synth_ftss(&app);
        // Fault P3 (scheduled right after P1). Whether it re-executes
        // depends on its granted allowance; if abandoned, it must be marked
        // dropped and P2 still runs.
        let sc = scenario_with(&app, &[], &[(p3, 0)]);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        assert!(out.deadline_miss.is_none());
        // P2 always completes.
        assert!(out.completions[p2.index()].is_some());
    }

    #[test]
    fn late_running_schedule_drops_soft_past_period() {
        // Force worst-case times plus a fault on P1: P2 (last) would start
        // at 150+80 = 230 and complete at 300 — exactly the period. Push
        // one more: make P3 take wcet so P2 starts at 230... With the
        // default schedule P1,P3,P2 all-wcet + fault: P1 done 150, P3 done
        // 230, P2 would complete at 300 = T, which is allowed (not > LST
        // = T - bcet = 270... start 230 <= 270: executes).
        let (app, [p1, p2, _]) = fig1_app();
        let s = synth_ftss(&app);
        let sc = scenario_with(&app, &[], &[(p1, 0)]);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        assert!(out.completions[p2.index()].is_some());
        assert_eq!(out.makespan, t(300));
        assert!(out.deadline_miss.is_none());
    }

    #[test]
    fn stale_coefficients_scale_runtime_utility() {
        // A fault abandons `mid` (its re-execution would be worthless, so
        // FTSS grants it no allowance); its consumer `snk` then runs with a
        // stale input and half the coefficient.
        let mut b = Application::builder(t(1000), FaultModel::new(1, t(10)));
        let src = b.add_soft("src", et(10, 10), UtilityFunction::constant(5.0).unwrap());
        let mid = b.add_soft(
            "mid",
            et(10, 10),
            UtilityFunction::step(10.0, [(t(25), 0.0)]).unwrap(), // expires fast
        );
        let snk = b.add_soft("snk", et(10, 10), UtilityFunction::constant(8.0).unwrap());
        b.add_dependency(src, mid).unwrap();
        b.add_dependency(mid, snk).unwrap();
        let app = b.build().unwrap();
        let s = synth_ftss(&app);
        assert_eq!(s.order_key(), vec![src, mid, snk]);
        assert_eq!(
            s.entries()[1].reexecutions,
            0,
            "a re-executed mid (completing >= 40) is worthless"
        );
        let sc = ExecutionScenario::from_tables(
            app.processes()
                .map(|p| vec![app.process(p).times().aet(); 2])
                .collect(),
            vec![vec![false; 2], vec![true, false], vec![false; 2]],
        );
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        // src: 5; mid: abandoned after its fault (0); snk: alpha (1+0)/2 =
        // 0.5 -> 4. Total 9.
        assert!((out.utility - 9.0).abs() < 1e-9, "got {}", out.utility);
        assert_eq!(out.trace.fault_count(), 1);
        assert!(out.completions[mid.index()].is_none());
    }

    #[test]
    fn in_model_cycles_report_in_model_verdict() {
        let (app, _) = fig1_app();
        let s = synth_ftss(&app);
        let out = OnlineScheduler::run_static(&app, &s, &ExecutionScenario::average_case(&app));
        assert_eq!(out.verdict, DegradationVerdict::InModel);
        assert!(out.verdict.hard_deadlines_held());
        assert_eq!(out.wcet_overruns, 0);
    }

    #[test]
    fn wcet_overrun_within_deadline_reports_degraded() {
        // P1 overruns its WCET of 70 but still meets its deadline of 180:
        // the cycle is out-of-contract yet all hard deadlines held.
        let (app, [p1, ..]) = fig1_app();
        let s = synth_ftss(&app);
        let sc = scenario_with(&app, &[(p1, [100, 100])], &[]);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        assert!(out.deadline_miss.is_none());
        assert_eq!(out.wcet_overruns, 1);
        assert_eq!(
            out.verdict,
            DegradationVerdict::Degraded {
                faults_beyond_budget: 0,
                wcet_overruns: 1
            }
        );
    }

    #[test]
    fn hard_miss_verdict_carries_deadline_details() {
        // P1 takes 200 > its 180 deadline: the run still completes and the
        // verdict pinpoints the miss.
        let (app, [p1, ..]) = fig1_app();
        let s = synth_ftss(&app);
        let sc = scenario_with(&app, &[(p1, [200, 200])], &[]);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        assert_eq!(out.deadline_miss, Some(p1));
        assert!(!out.verdict.hard_deadlines_held());
        assert_eq!(
            out.verdict,
            DegradationVerdict::HardMiss {
                process: p1,
                deadline: t(180),
                completed_at: t(200),
            }
        );
        assert!(out
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::DeadlineMiss { .. })));
    }

    #[test]
    fn faults_beyond_budget_materialize_and_are_counted() {
        // k = 1 but the scenario plans 2 faults on the hard process P1: both
        // materialize (hard processes always re-execute) and the verdict
        // reports one fault beyond budget — or a hard miss if the deadline
        // fell. With WCET durations: 70 + 10 + 70 + 10 + 70 = 230 > 180, so
        // this is a HardMiss; with BCET-ish durations it would be Degraded.
        let (app, [p1, ..]) = fig1_app();
        let s = synth_ftss(&app);
        let mut durations: Vec<Vec<Time>> = app
            .processes()
            .map(|p| vec![app.process(p).times().wcet(); 3])
            .collect();
        durations[p1.index()] = vec![t(30); 3];
        let mut faulty: Vec<Vec<bool>> = app.processes().map(|_| vec![false; 3]).collect();
        faulty[p1.index()] = vec![true, true, false];
        let sc = ExecutionScenario::from_tables(durations, faulty);
        let out = OnlineScheduler::run_static(&app, &s, &sc);
        // 30 + 10 + 30 + 10 + 30 = 110 <= 180: deadlines hold.
        assert_eq!(out.completions[p1.index()], Some(t(110)));
        assert_eq!(out.faults_hit, 2);
        assert!(out.deadline_miss.is_none());
        assert_eq!(
            out.verdict,
            DegradationVerdict::Degraded {
                faults_beyond_budget: 1,
                wcet_overruns: 0
            }
        );
    }

    #[test]
    fn hard_deadlines_hold_across_random_scenarios() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (app, _) = fig1_app();
        let tree = synth_tree(&app, 6);
        let runner = OnlineScheduler::new(&app, &tree);
        let sampler = crate::scenario::ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(7);
        for f in 0..=1 {
            for _ in 0..500 {
                let sc = sampler.sample(&mut rng, f);
                let out = runner.run(&sc);
                assert!(
                    out.deadline_miss.is_none(),
                    "deadline miss under scenario with {f} faults"
                );
            }
        }
    }
}
