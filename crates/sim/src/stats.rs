//! Small statistics helpers for Monte Carlo summaries.

use std::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use ftqs_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.stddev() - 2.138089935299395).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected; 0 with < 2 samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval of the mean
    /// (1.96 · s/√n; 0 with < 2 samples).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean(), self.ci95(), self.n)
    }
}

/// A Bernoulli counter: hits over trials, mergeable like [`Accumulator`].
///
/// Used by the robustness harness to pool hard-miss and degradation rates
/// across scenarios, applications and threads.
///
/// # Example
///
/// ```
/// use ftqs_sim::stats::Rate;
///
/// let mut r = Rate::new();
/// r.record(true);
/// r.record(false);
/// r.record(false);
/// assert_eq!(r.hits(), 1);
/// assert!((r.value() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rate {
    hits: u64,
    total: u64,
}

impl Rate {
    /// An empty rate (0 trials; [`Rate::value`] reports 0).
    #[must_use]
    pub fn new() -> Self {
        Rate::default()
    }

    /// Records one trial.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += u64::from(hit);
    }

    /// Merges another counter (parallel reduction).
    pub fn merge(&mut self, other: &Rate) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Number of hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical rate in `[0, 1]` (0 when no trials were recorded).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.hits,
            self.total,
            100.0 * self.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_zeroed() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.ci95(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut acc = Accumulator::new();
        acc.add(42.0);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.stddev(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Accumulator::new();
        for &x in &xs {
            seq.add(x);
        }
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.stddev() - seq.stddev()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(3.0);
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_is_compact() {
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(2.0);
        assert!(a.to_string().contains("n=2"));
    }

    #[test]
    fn rate_counts_and_merges() {
        let mut a = Rate::new();
        assert_eq!(a.value(), 0.0);
        a.record(true);
        a.record(false);
        let mut b = Rate::new();
        b.record(true);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.hits(), 3);
        assert_eq!(a.total(), 4);
        assert!((a.value() - 0.75).abs() < 1e-12);
        assert!(a.to_string().contains("3/4"));
    }
}
