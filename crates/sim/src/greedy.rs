//! A purely **online** scheduler — the alternative the paper argues
//! against: "a purely online approach, which computes a new schedule every
//! time a process fails or completes, incurs an unacceptable overhead"
//! (§1, abstract).
//!
//! [`GreedyOnlineScheduler`] makes every decision at run time: after each
//! completion (or fault) it re-examines the ready set, drops soft processes
//! whose expected utility has expired, verifies hard-deadline safety of
//! each candidate with a fresh worst-case analysis, and picks the best
//! candidate by utility density. Functionally it plays the same game as the
//! quasi-static tree — but each decision costs a full O(n²) analysis
//! *inside the control cycle*, which is exactly the overhead quasi-static
//! scheduling moves off-line. The `simulation` bench quantifies the gap.
//!
//! This scheduler guarantees hard deadlines the same way FTSS does: a hard
//! process is started early enough that, even with all remaining faults
//! hitting the worst penalties, every remaining hard process still meets
//! its deadline; soft candidates are only started when the hard suffix
//! stays feasible.
//!
//! On the `expect()`s below: `Application` can only be constructed through
//! its builder, whose `Criticality` enum makes "soft ⇔ has a utility
//! function" and "hard ⇔ has a deadline" type-level invariants. The
//! `expect()`s in this module assert those invariants on values filtered
//! by `is_hard`; no input reachable from the public API can trip them
//! (malformed-application errors are surfaced as `Error::Validation` at
//! build time, not here).

use crate::scenario::ExecutionScenario;
use crate::trace::{DropReason, Trace, TraceEvent};
use ftqs_core::wcdelay::{worst_case_fault_delay, SlackItem};
use ftqs_core::{Application, Time};
use ftqs_graph::NodeId;

/// Outcome of one greedily-scheduled cycle (a subset of
/// [`SimOutcome`](crate::SimOutcome) — the greedy scheduler has no
/// schedule tree to switch between).
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Total stale-scaled utility.
    pub utility: f64,
    /// Completion times, indexed by node index.
    pub completions: Vec<Option<Time>>,
    /// A hard process that missed its deadline (stays `None` unless the
    /// application was infeasible to begin with).
    pub deadline_miss: Option<NodeId>,
    /// Number of scheduling decisions taken (the online overhead driver).
    pub decisions: usize,
    /// Event trace.
    pub trace: Trace,
}

/// The purely online scheduler (see module docs).
#[derive(Debug)]
pub struct GreedyOnlineScheduler<'a> {
    app: &'a Application,
}

impl<'a> GreedyOnlineScheduler<'a> {
    /// Creates a greedy online scheduler for `app`.
    #[must_use]
    pub fn new(app: &'a Application) -> Self {
        GreedyOnlineScheduler { app }
    }

    /// Simulates one cycle under `scenario`, deciding everything online.
    #[must_use]
    pub fn run(&self, scenario: &ExecutionScenario) -> GreedyOutcome {
        let app = self.app;
        let k = app.faults().k;
        let n = app.len();

        let mut pending_preds: Vec<usize> = app
            .processes()
            .map(|p| app.graph().predecessors(p).count())
            .collect();
        let mut resolved = vec![false; n];
        let mut dropped = vec![false; n];
        let mut completions: Vec<Option<Time>> = vec![None; n];
        let mut alpha = vec![0.0f64; n];
        let mut now = Time::ZERO;
        let mut faults_seen = 0usize;
        let mut utility = 0.0;
        let mut decisions = 0usize;
        let mut deadline_miss = None;
        let mut trace = Trace::new();
        let mut remaining = n;

        while remaining > 0 {
            decisions += 1;
            let ready: Vec<NodeId> = app
                .processes()
                .filter(|&p| !resolved[p.index()] && pending_preds[p.index()] == 0)
                .collect();
            debug_assert!(!ready.is_empty(), "a DAG always has a ready node");

            // Drop soft ready processes that can no longer earn utility or
            // cannot complete within the period.
            let mut candidates: Vec<NodeId> = Vec::with_capacity(ready.len());
            for &p in &ready {
                if app.is_hard(p) {
                    candidates.push(p);
                    continue;
                }
                let times = app.process(p).times();
                let u = app
                    .process(p)
                    .criticality()
                    .utility()
                    .expect("soft process has a utility");
                let expired = u.value(now + times.bcet()) <= 0.0;
                let overruns = now + times.bcet() > app.period();
                if expired || overruns {
                    resolved[p.index()] = true;
                    dropped[p.index()] = true;
                    remaining -= 1;
                    for s in app.graph().successors(p) {
                        pending_preds[s.index()] -= 1;
                    }
                    trace.push(TraceEvent::Dropped {
                        process: p,
                        at: now,
                        reason: DropReason::PastLatestStart,
                    });
                } else {
                    candidates.push(p);
                }
            }
            if candidates.is_empty() {
                continue;
            }

            // Hard-safety filter: starting `p` now must keep every
            // remaining hard process feasible under the remaining faults.
            // Saturating: out-of-model scenarios can exceed the budget.
            let budget = k.saturating_sub(faults_seen);
            let mut safe: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|&p| self.hard_safe(&resolved, p, now, budget))
                .collect();
            if safe.is_empty() {
                // Urgency fallback: run the tightest-deadline ready hard
                // process (if the app was FTSS-schedulable this branch is
                // unreachable; it keeps the scheduler total otherwise).
                let fallback = candidates
                    .iter()
                    .copied()
                    .filter(|&p| app.is_hard(p))
                    .min_by_key(|&p| app.process(p).criticality().deadline());
                match fallback {
                    Some(h) => safe.push(h),
                    None => {
                        // Only soft candidates and none is safe: drop the
                        // longest one and retry.
                        let victim = candidates
                            .iter()
                            .copied()
                            .max_by_key(|&p| app.process(p).times().wcet())
                            .expect("candidates is non-empty");
                        resolved[victim.index()] = true;
                        dropped[victim.index()] = true;
                        remaining -= 1;
                        for s in app.graph().successors(victim) {
                            pending_preds[s.index()] -= 1;
                        }
                        trace.push(TraceEvent::Dropped {
                            process: victim,
                            at: now,
                            reason: DropReason::PastLatestStart,
                        });
                        continue;
                    }
                }
            }

            // Pick: best soft by utility density, else earliest deadline.
            let pick = safe
                .iter()
                .copied()
                .filter(|&p| !app.is_hard(p))
                .map(|p| {
                    let times = app.process(p).times();
                    let u = app
                        .process(p)
                        .criticality()
                        .utility()
                        .expect("soft process has a utility");
                    let density = u.value(now + times.aet()) / times.aet().as_ms().max(1) as f64;
                    (p, density)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(p, _)| p)
                .or_else(|| {
                    safe.iter()
                        .copied()
                        .filter(|&p| app.is_hard(p))
                        .min_by_key(|&p| app.process(p).criticality().deadline())
                })
                .expect("safe set is non-empty");

            // Execute with re-execution on faults (hard always; soft while
            // still safe and worthwhile).
            let p = pick;
            let hard = app.is_hard(p);
            let mut attempt = 0usize;
            let completed = loop {
                trace.push(TraceEvent::Started {
                    process: p,
                    attempt,
                    at: now,
                });
                now += scenario.duration(p, attempt);
                if !scenario.is_faulty(p, attempt) {
                    break true;
                }
                faults_seen += 1;
                trace.push(TraceEvent::Fault {
                    process: p,
                    attempt,
                    at: now,
                });
                let mu = app.recovery_overhead(p);
                let retry = if hard {
                    true
                } else {
                    let u = app
                        .process(p)
                        .criticality()
                        .utility()
                        .expect("soft process has a utility");
                    let worthwhile = u.value(now + mu + app.process(p).times().aet()) > 0.0;
                    worthwhile
                        && self.hard_safe(&resolved, p, now + mu, k.saturating_sub(faults_seen))
                };
                if !retry {
                    break false;
                }
                now += mu;
                attempt += 1;
            };

            resolved[p.index()] = true;
            remaining -= 1;
            for s in app.graph().successors(p) {
                pending_preds[s.index()] -= 1;
            }
            if completed {
                completions[p.index()] = Some(now);
                let preds: Vec<NodeId> = app.graph().predecessors(p).collect();
                let sum: f64 = preds
                    .iter()
                    .map(|q| {
                        if dropped[q.index()] {
                            0.0
                        } else {
                            alpha[q.index()]
                        }
                    })
                    .sum();
                let a = (1.0 + sum) / (1.0 + preds.len() as f64);
                alpha[p.index()] = a;
                let credited = app
                    .process(p)
                    .criticality()
                    .utility()
                    .map_or(0.0, |u| a * u.value(now));
                utility += credited;
                trace.push(TraceEvent::Completed {
                    process: p,
                    at: now,
                    utility: credited,
                });
                if let Some(d) = app.process(p).criticality().deadline() {
                    if now > d && deadline_miss.is_none() {
                        deadline_miss = Some(p);
                    }
                }
            } else {
                dropped[p.index()] = true;
                trace.push(TraceEvent::Dropped {
                    process: p,
                    at: now,
                    reason: DropReason::FaultNoRecovery,
                });
            }
        }

        GreedyOutcome {
            utility,
            completions,
            deadline_miss,
            decisions,
            trace,
        }
    }

    /// Would starting `candidate` at `now` keep every unresolved hard
    /// process feasible with `budget` remaining faults? (The same test as
    /// FTSS's `SiH`, executed online.)
    fn hard_safe(&self, resolved: &[bool], candidate: NodeId, now: Time, budget: usize) -> bool {
        let app = self.app;
        let mut wcet = now + app.process(candidate).times().wcet();
        let mut items = vec![SlackItem::new(
            app.recovery_penalty(candidate),
            if app.is_hard(candidate) { budget } else { 0 },
        )];
        if let Some(d) = app.process(candidate).criticality().deadline() {
            if wcet + worst_case_fault_delay(&items, budget) > d {
                return false;
            }
        }
        // Remaining hard processes in deadline order (precedence among the
        // hard set respected implicitly by deadline monotonicity of our
        // generator; a full EDF-with-precedence pass would be costlier —
        // this IS the overhead the paper talks about).
        let mut hards: Vec<NodeId> = app
            .hard_processes()
            .filter(|&h| h != candidate && !resolved[h.index()])
            .collect();
        hards.sort_by_key(|&h| app.process(h).criticality().deadline());
        for h in hards {
            wcet += app.process(h).times().wcet();
            items.push(SlackItem::new(app.recovery_penalty(h), budget));
            let d = app
                .process(h)
                .criticality()
                .deadline()
                .expect("hard process has a deadline");
            if wcet + worst_case_fault_delay(&items, budget) > d {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSampler;
    use ftqs_core::{ExecutionTimes, FaultModel, UtilityFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(ms: u64) -> Time {
        Time::from_ms(ms)
    }

    fn fig1_app() -> Application {
        let mut b = Application::builder(t(300), FaultModel::new(1, t(10)));
        let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(t(30), t(70)).unwrap(),
            UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
        );
        let p3 = b.add_soft(
            "P3",
            ExecutionTimes::uniform(t(40), t(80)).unwrap(),
            UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.add_dependency(p1, p3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn greedy_completes_every_cycle() {
        let app = fig1_app();
        let g = GreedyOnlineScheduler::new(&app);
        let out = g.run(&ExecutionScenario::average_case(&app));
        assert!(out.deadline_miss.is_none());
        assert!(out.utility > 0.0);
        assert!(out.decisions >= app.len());
    }

    #[test]
    fn greedy_keeps_hard_deadlines_across_random_scenarios() {
        let app = fig1_app();
        let g = GreedyOnlineScheduler::new(&app);
        let sampler = ScenarioSampler::new(&app);
        let mut rng = StdRng::seed_from_u64(17);
        for f in 0..=1 {
            for _ in 0..500 {
                let sc = sampler.sample(&mut rng, f);
                let out = g.run(&sc);
                assert!(
                    out.deadline_miss.is_none(),
                    "deadline missed with {f} faults"
                );
            }
        }
    }

    #[test]
    fn greedy_adapts_like_the_tree_on_early_completions() {
        // With P1 at its bcet the greedy scheduler should also pick the
        // P2-first continuation (it decides online with full knowledge of
        // the current time), matching Fig. 4b5's utility.
        let app = fig1_app();
        let attempts = app.faults().k + 1;
        let mut durations: Vec<Vec<Time>> = app
            .processes()
            .map(|p| vec![app.process(p).times().aet(); attempts])
            .collect();
        durations[0] = vec![t(30); attempts];
        let sc = ExecutionScenario::from_tables(
            durations,
            app.processes().map(|_| vec![false; attempts]).collect(),
        );
        let g = GreedyOnlineScheduler::new(&app);
        let out = g.run(&sc);
        assert_eq!(out.utility, 70.0);
    }

    #[test]
    fn greedy_recovers_hard_faults() {
        let app = fig1_app();
        let attempts = app.faults().k + 1;
        let mut faulty: Vec<Vec<bool>> = app.processes().map(|_| vec![false; attempts]).collect();
        faulty[0][0] = true;
        let sc = ExecutionScenario::from_tables(
            app.processes()
                .map(|p| vec![app.process(p).times().wcet(); attempts])
                .collect(),
            faulty,
        );
        let g = GreedyOnlineScheduler::new(&app);
        let out = g.run(&sc);
        assert!(out.deadline_miss.is_none());
        assert_eq!(out.completions[0], Some(t(150)));
        assert_eq!(out.trace.fault_count(), 1);
    }
}
