//! Property corpus for the fault-injection subsystem.
//!
//! Two families of seeded cases (no proptest in this environment; every
//! assertion message carries the failing seed triple):
//!
//! * **In-model**: under every duration-bounded fault model (independent,
//!   bursty, intermittent) with at most `k` planned faults, all three
//!   policies (FTQS tree, FTSS schedule, FTSF schedule) keep
//!   `deadline_miss` `None` — the paper's guarantee survives the new
//!   sampler plumbing.
//! * **Out-of-model**: scenarios planning up to `2k` faults and WCET
//!   overruns always simulate to completion with a `DegradationVerdict`
//!   — no panics — for all three policies and the greedy baseline, under
//!   both feature configurations (CI runs this file with and without
//!   `parallel`).
//!
//! Plus the bit-identity pins: the default independent-uniform model must
//! reproduce the historical sampler exactly (scenario digests and Monte
//! Carlo means captured before the `FaultModel` abstraction existed).

use ftqs_core::{
    Application, Engine, ExecutionTimes, FSchedule, FaultModel as DesignFaults, QuasiStaticTree,
    SynthesisRequest, Time, UtilityFunction,
};
use ftqs_sim::{
    DegradationVerdict, FaultModel, GreedyOnlineScheduler, MonteCarlo, OnlineScheduler,
    ScenarioSampler, FAULT_MODEL_NAMES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn t(ms: u64) -> Time {
    Time::from_ms(ms)
}

fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
    Engine::new()
        .session()
        .synthesize(app, &SynthesisRequest::ftqs(budget))
        .expect("schedulable")
        .into_tree()
}

fn synth_static(app: &Application, req: &SynthesisRequest) -> FSchedule {
    Engine::new()
        .session()
        .synthesize(app, req)
        .expect("schedulable")
        .root_schedule()
        .clone()
}

fn build_app(seed: u64) -> Application {
    use ftqs_workloads::{synthetic, GeneratorParams};
    let params = GeneratorParams::paper(10 + (seed as usize % 3) * 5);
    let mut rng = StdRng::seed_from_u64(0xD15C + seed);
    synthetic::generate_schedulable(&params, &mut rng, 50)
}

fn cases() -> impl Iterator<Item = (u64, u64)> {
    (0..24u64).map(|i| {
        let mut rng = StdRng::seed_from_u64(0xDE64 ^ i);
        (rng.gen_range(0u64..8), rng.gen::<u64>())
    })
}

/// The paper's Fig. 1 application — the app the goldens were captured on.
fn fig1_app() -> Application {
    let mut b = Application::builder(t(300), DesignFaults::new(1, t(10)));
    let p1 = b.add_hard("P1", ExecutionTimes::uniform(t(30), t(70)).unwrap(), t(180));
    let p2 = b.add_soft(
        "P2",
        ExecutionTimes::uniform(t(30), t(70)).unwrap(),
        UtilityFunction::step(40.0, [(t(90), 20.0), (t(200), 10.0), (t(250), 0.0)]).unwrap(),
    );
    let p3 = b.add_soft(
        "P3",
        ExecutionTimes::uniform(t(40), t(80)).unwrap(),
        UtilityFunction::step(40.0, [(t(110), 30.0), (t(150), 10.0), (t(220), 0.0)]).unwrap(),
    );
    b.add_dependency(p1, p2).unwrap();
    b.add_dependency(p1, p3).unwrap();
    b.build().unwrap()
}

/// FNV-style fold over every (duration, fault) cell of a scenario.
fn scenario_digest(app: &Application, sc: &ftqs_sim::ExecutionScenario) -> u64 {
    let mut digest = 0u64;
    for p in app.processes() {
        for a in 0..sc.attempts() {
            digest = digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add(sc.duration(p, a).as_ms());
            digest = digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add(u64::from(sc.is_faulty(p, a)));
        }
    }
    digest
}

#[test]
fn independent_model_is_bit_identical_to_legacy_sampler() {
    // Digests captured from the sampler before the FaultModel abstraction:
    // same seed must keep producing the same ExecutionScenario.
    let app = fig1_app();
    let sampler = ScenarioSampler::new(&app);
    let goldens: [(u64, usize, u64); 6] = [
        (9, 0, 0x679d5186ff8520cd),
        (9, 1, 0x8042728a82d54316),
        (77, 0, 0xd625cc31c3b0f4d0),
        (77, 1, 0xeecaed3547011719),
        (123, 0, 0x47b33f199526d398),
        (123, 1, 0x2449a34c831899d1),
    ];
    for (seed, faults, want) in goldens {
        let sc = sampler.sample(&mut StdRng::seed_from_u64(seed), faults);
        assert_eq!(
            scenario_digest(&app, &sc),
            want,
            "scenario drifted: seed {seed}, {faults} faults"
        );
    }
}

#[test]
fn generated_app_monte_carlo_means_are_pinned() {
    // Fig9-style pipeline golden: synthetic app, FTQS tree, Monte Carlo
    // means for each paper fault count — bit-for-bit.
    use ftqs_workloads::{synthetic, GeneratorParams};
    let params = GeneratorParams::paper(10);
    let mut rng = StdRng::seed_from_u64(0xF19);
    let app = synthetic::generate_schedulable(&params, &mut rng, 50);
    let tree = synth_tree(&app, 6);
    let mc = MonteCarlo {
        scenarios: 300,
        seed: 0xABCD,
        threads: 1,
    };
    let want = [
        0x406e01408168961cu64,
        0x406b79df8ad04785,
        0x406997d1e6eef327,
        0x40684ae662792fe4,
    ];
    for (f, bits) in want.into_iter().enumerate() {
        let e = mc.evaluate(&app, &tree, f);
        assert_eq!(
            e.utility.mean().to_bits(),
            bits,
            "fig9-style mean drifted at {f} faults (got {})",
            e.utility.mean()
        );
        assert_eq!(e.deadline_misses, 0);
    }
}

#[test]
fn in_model_scenarios_never_miss_under_any_duration_bounded_model() {
    let models = [
        FaultModel::Independent,
        FaultModel::preset("bursty").unwrap(),
        FaultModel::preset("intermittent").unwrap(),
    ];
    for (app_seed, sc_seed) in cases() {
        let app = build_app(app_seed);
        let k = app.faults().k;
        let tree = synth_tree(&app, 6);
        let ftqs = OnlineScheduler::new(&app, &tree);
        let ftss = synth_static(&app, &SynthesisRequest::ftss());
        let ftsf = synth_static(&app, &SynthesisRequest::ftsf());
        for model in models {
            let sampler = ScenarioSampler::with_model(&app, model);
            for faults in 0..=k {
                let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
                let outs = [
                    ftqs.run(&sc),
                    OnlineScheduler::run_static(&app, &ftss, &sc),
                    OnlineScheduler::run_static(&app, &ftsf, &sc),
                ];
                for (policy, out) in ["ftqs", "ftss", "ftsf"].iter().zip(outs) {
                    assert!(
                        out.deadline_miss.is_none(),
                        "{policy} missed a deadline in-model; model {}, case \
                         {app_seed}/{sc_seed}/{faults}",
                        model.name()
                    );
                    assert_eq!(
                        out.verdict,
                        DegradationVerdict::InModel,
                        "{policy} verdict; model {}, case {app_seed}/{sc_seed}/{faults}",
                        model.name()
                    );
                }
            }
        }
    }
}

#[test]
fn out_of_model_scenarios_always_return_a_verdict() {
    for (app_seed, sc_seed) in cases() {
        let app = build_app(app_seed);
        let k = app.faults().k;
        let tree = synth_tree(&app, 6);
        let ftqs = OnlineScheduler::new(&app, &tree);
        let ftss = synth_static(&app, &SynthesisRequest::ftss());
        let ftsf = synth_static(&app, &SynthesisRequest::ftsf());
        let greedy = GreedyOnlineScheduler::new(&app);
        for name in FAULT_MODEL_NAMES {
            let model = FaultModel::preset(name).unwrap();
            let sampler = ScenarioSampler::with_model(&app, model);
            // Fault intensities past the budget, up to 2k.
            for faults in [k + 1, 2 * k] {
                let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
                let outs = [
                    ftqs.run(&sc),
                    OnlineScheduler::run_static(&app, &ftss, &sc),
                    OnlineScheduler::run_static(&app, &ftsf, &sc),
                ];
                for (policy, out) in ["ftqs", "ftss", "ftsf"].iter().zip(outs) {
                    // The verdict must be consistent with the miss field.
                    match out.verdict {
                        DegradationVerdict::HardMiss { process, .. } => {
                            assert_eq!(
                                out.deadline_miss,
                                Some(process),
                                "{policy}/{name} case {app_seed}/{sc_seed}/{faults}"
                            );
                        }
                        DegradationVerdict::Degraded {
                            faults_beyond_budget,
                            wcet_overruns,
                        } => {
                            assert!(out.deadline_miss.is_none());
                            assert!(
                                faults_beyond_budget > 0 || wcet_overruns > 0,
                                "{policy}/{name} empty degradation; case \
                                 {app_seed}/{sc_seed}/{faults}"
                            );
                        }
                        DegradationVerdict::InModel => {
                            // Legitimate: planned faults can land on dropped
                            // processes and never materialize.
                            assert!(out.deadline_miss.is_none());
                            assert!(out.faults_hit <= k);
                        }
                    }
                }
                // The greedy baseline must also stay total out-of-model.
                let g = greedy.run(&sc);
                let _ = g.utility;
            }
        }
    }
}

#[test]
fn wcet_overruns_surface_in_the_verdict() {
    // With overrun probability 1 every attempt exceeds its WCET, so any
    // completed cycle must be flagged Degraded or HardMiss — never InModel
    // (every app has at least one process that executes).
    let model = FaultModel::WcetStress {
        overrun_prob: 1.0,
        overrun_factor: 2.0,
    };
    for (app_seed, sc_seed) in cases().take(8) {
        let app = build_app(app_seed);
        let tree = synth_tree(&app, 4);
        let sampler = ScenarioSampler::with_model(&app, model);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), 0);
        let out = OnlineScheduler::new(&app, &tree).run(&sc);
        assert!(out.wcet_overruns > 0, "case {app_seed}/{sc_seed}");
        assert_ne!(
            out.verdict,
            DegradationVerdict::InModel,
            "universal overruns must not report in-model; case {app_seed}/{sc_seed}"
        );
    }
}

#[test]
fn extreme_fault_loads_terminate_on_hard_processes() {
    // Worst case for termination: every planned fault lands on the same
    // hard process (intermittent, reoccur = 1). The attempt table is sized
    // to the plan, saturation ends the fault run, and the cycle completes.
    let app = fig1_app(); // k = 1
    let tree = synth_tree(&app, 4);
    let sampler = ScenarioSampler::with_model(&app, FaultModel::Intermittent { reoccur: 1.0 });
    for planned in [2usize, 4, 8] {
        let sc = sampler.sample(&mut StdRng::seed_from_u64(99), planned);
        let out = OnlineScheduler::new(&app, &tree).run(&sc);
        assert!(
            out.faults_hit <= planned,
            "materialized more than planned at {planned}"
        );
        // Every hard process still ran to completion (possibly late).
        for h in app.hard_processes() {
            assert!(out.completions[h.index()].is_some());
        }
    }
}
