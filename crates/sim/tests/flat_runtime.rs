//! Bit-identity corpus: the flat runtime (`FlatRuntime`/`BatchRunner`)
//! must reproduce the reference `OnlineScheduler` *exactly* — utilities
//! (f64 bits), `DegradationVerdict`s, completion tables, and full event
//! traces — across generated applications × synthesis policies
//! (FTQS/FTSS/FTSF) × all fault-model presets × in- and out-of-model
//! intensities. Plus the batching contracts: thread-count invariance and
//! common-random-numbers behaviour of the sweep evaluators.
//!
//! This suite runs in both feature configurations (the CI serial job
//! re-runs it with `--no-default-features`).

use ftqs_core::{Application, Engine, QuasiStaticTree, SynthesisRequest};
use ftqs_sim::{
    BatchRunner, FaultModel, FlatRuntime, MonteCarlo, NoTrace, OnlineScheduler, RunScratch,
    ScenarioSampler, FAULT_MODEL_NAMES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_app(seed: u64) -> Application {
    use ftqs_workloads::{synthetic, GeneratorParams};
    let params = GeneratorParams::paper(10 + (seed as usize % 3) * 5);
    let mut rng = StdRng::seed_from_u64(0xD15C + seed);
    synthetic::generate_schedulable(&params, &mut rng, 50)
}

/// The three synthesis policies of the paper's comparison, as trees.
fn policy_trees(app: &Application) -> Vec<(&'static str, QuasiStaticTree)> {
    let mut session = Engine::new().session();
    vec![
        (
            "ftqs",
            session
                .synthesize(app, &SynthesisRequest::ftqs(6))
                .expect("schedulable")
                .into_tree(),
        ),
        (
            "ftss",
            session
                .synthesize(app, &SynthesisRequest::ftss())
                .expect("schedulable")
                .into_tree(),
        ),
        (
            "ftsf",
            session
                .synthesize(app, &SynthesisRequest::ftsf())
                .expect("schedulable")
                .into_tree(),
        ),
    ]
}

#[test]
fn flat_runtime_is_bit_identical_to_reference_across_corpus() {
    for app_seed in [0u64, 1, 2, 5] {
        let app = build_app(app_seed);
        let k = app.faults().k;
        for (policy, tree) in policy_trees(&app) {
            let reference = OnlineScheduler::new(&app, &tree);
            let flat = FlatRuntime::new(&app, &tree);
            for model_name in FAULT_MODEL_NAMES {
                let model = FaultModel::preset(model_name).unwrap();
                let sampler = ScenarioSampler::with_model(&app, model);
                // In-model (0 and k) and out-of-model (2k) intensities.
                for intensity in [0usize, k, 2 * k] {
                    let mut rng = StdRng::seed_from_u64(
                        0xF1A7 ^ app_seed.wrapping_mul(31) ^ intensity as u64,
                    );
                    for rep in 0..40 {
                        let sc = sampler.sample(&mut rng, intensity);
                        let a = reference.run(&sc);
                        let b = flat.run(&sc);
                        let case =
                            format!("app {app_seed} {policy} {model_name} f={intensity} #{rep}");
                        assert_eq!(
                            a.utility.to_bits(),
                            b.utility.to_bits(),
                            "utility bits diverged: {case}"
                        );
                        assert_eq!(a.verdict, b.verdict, "verdict diverged: {case}");
                        assert_eq!(a.completions, b.completions, "completions diverged: {case}");
                        assert_eq!(a.deadline_miss, b.deadline_miss, "miss diverged: {case}");
                        assert_eq!(a.makespan, b.makespan, "makespan diverged: {case}");
                        assert_eq!(a.faults_hit, b.faults_hit, "faults diverged: {case}");
                        assert_eq!(
                            a.wcet_overruns, b.wcet_overruns,
                            "overruns diverged: {case}"
                        );
                        assert_eq!(a.trace, b.trace, "trace diverged: {case}");
                    }
                }
            }
        }
    }
}

#[test]
fn untraced_paths_match_traced_outcomes() {
    // The EventSink generic must not change semantics: NoTrace runs of
    // both runtimes produce the same numbers as traced runs.
    let app = build_app(3);
    let tree = policy_trees(&app).remove(0).1;
    let reference = OnlineScheduler::new(&app, &tree);
    let flat = FlatRuntime::new(&app, &tree);
    let sampler = ScenarioSampler::new(&app);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut scratch = RunScratch::new();
    for f in 0..=app.faults().k {
        for _ in 0..50 {
            let sc = sampler.sample(&mut rng, f);
            let traced = reference.run(&sc);
            let untraced = reference.run_untraced(&sc);
            assert_eq!(traced.utility.to_bits(), untraced.utility.to_bits());
            assert_eq!(traced.verdict, untraced.verdict);
            assert!(untraced.trace.events().is_empty());
            let cycle = flat.run_cycle(&sc, &mut scratch, &mut NoTrace);
            assert_eq!(cycle.utility.to_bits(), traced.utility.to_bits());
            assert_eq!(cycle.verdict, traced.verdict);
            assert_eq!(cycle.switches, traced.trace.switch_count());
            assert_eq!(scratch.completions(), traced.completions.as_slice());
        }
    }
}

#[test]
fn batched_evaluation_is_thread_count_invariant() {
    // Per-worker counter-based RNG streams: scenario i's stream depends
    // only on (base seed, i), so any thread split produces identical
    // partials up to Welford merge order — counts and tallies exactly,
    // means to merge rounding. Covers an out-of-model intensity too.
    let app = build_app(1);
    let k = app.faults().k;
    let tree = policy_trees(&app).remove(0).1;
    let runtime = FlatRuntime::new(&app, &tree);
    for (model_name, intensity) in [("independent", k), ("intermittent", 2 * k)] {
        let model = FaultModel::preset(model_name).unwrap();
        let runner = BatchRunner::new(&app, &runtime, model);
        let serial = MonteCarlo {
            scenarios: 257, // deliberately not divisible by thread counts
            seed: 0xAB5EED,
            threads: 1,
        };
        let reference = runner.evaluate(&serial, intensity);
        for threads in [2usize, 3, 5, 8] {
            let par = MonteCarlo { threads, ..serial };
            let got = runner.evaluate(&par, intensity);
            assert_eq!(got.utility.count(), reference.utility.count());
            assert_eq!(
                got.deadline_misses, reference.deadline_misses,
                "{model_name}/{threads}t"
            );
            assert_eq!(got.degraded, reference.degraded, "{model_name}/{threads}t");
            assert!(
                (got.utility.mean() - reference.utility.mean()).abs() < 1e-9,
                "{model_name}: {threads} threads diverged"
            );
            assert!((got.faults.mean() - reference.faults.mean()).abs() < 1e-9);
        }
    }
}

#[test]
fn in_model_sweep_is_bit_identical_to_per_column_evaluation() {
    // Common random numbers must be a no-op while every column stays
    // in-model: attempts = k + 1 either way, so the sweep's columns equal
    // independent per-column evaluations bit for bit.
    let app = build_app(2);
    let k = app.faults().k;
    let tree = policy_trees(&app).remove(0).1;
    let mc = MonteCarlo {
        scenarios: 120,
        seed: 0x5EED,
        threads: 2,
    };
    let counts: Vec<usize> = (0..=k).collect();
    let swept = mc.evaluate_fault_sweep(&app, &tree, &counts);
    for (&f, col) in counts.iter().zip(&swept) {
        let solo = mc.evaluate(&app, &tree, f);
        assert_eq!(
            col.utility.mean().to_bits(),
            solo.utility.mean().to_bits(),
            "column f={f}"
        );
        assert_eq!(col.deadline_misses, solo.deadline_misses);
        assert_eq!(col.degraded, solo.degraded);
    }
}

#[test]
fn sweep_columns_share_duration_draws_across_intensities() {
    // The CRN contract at the sampler level: with the attempt-table width
    // pinned to the sweep maximum, the same per-scenario stream yields
    // identical duration tables for every fault count.
    use ftqs_sim::{FlatScenario, ScenarioView};
    let app = build_app(0);
    let k = app.faults().k;
    let attempts = (2 * k).max(k) + 1;
    let sampler = ScenarioSampler::new(&app);
    let mut base = FlatScenario::new();
    sampler.sample_into_with_attempts(&mut StdRng::seed_from_u64(42), 0, attempts, &mut base);
    for f in 1..=2 * k {
        let mut other = FlatScenario::new();
        sampler.sample_into_with_attempts(&mut StdRng::seed_from_u64(42), f, attempts, &mut other);
        assert_eq!(other.fault_count(), f);
        for p in 0..app.len() {
            for a in 0..attempts {
                assert_eq!(
                    base.attempt_duration(p, a),
                    other.attempt_duration(p, a),
                    "duration draw diverged at p={p} a={a} f={f}"
                );
            }
        }
    }
}

#[test]
fn out_of_model_sweep_columns_complete_with_verdicts() {
    // The CRN sweep must stay total out-of-model and partition scenarios
    // into the three verdict buckets.
    let app = build_app(4);
    let k = app.faults().k;
    let tree = policy_trees(&app).remove(0).1;
    let mc = MonteCarlo {
        scenarios: 100,
        seed: 9,
        threads: 2,
    };
    let intensities: Vec<usize> = (0..=2 * k).collect();
    let evals = mc.evaluate_intensity_sweep(&app, &tree, FaultModel::Independent, &intensities);
    assert_eq!(evals.len(), 2 * k + 1);
    for (&f, e) in intensities.iter().zip(&evals) {
        assert_eq!(e.utility.count(), 100, "column f={f} incomplete");
        if f <= k {
            assert_eq!(e.deadline_misses, 0, "in-model column f={f} missed");
        }
    }
}
