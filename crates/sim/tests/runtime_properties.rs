//! Property-style tests of the online runtime: whatever the execution
//! times and fault pattern, the scheduler must (a) never miss a hard
//! deadline, (b) complete every hard process, (c) keep time consistent,
//! and (d) credit utility consistently with the stale-coefficient rules.
//! Cases are generated from explicit seed loops (no proptest in this
//! environment); the failing seed triple is in every assertion message.

use ftqs_core::{
    Application, Engine, ExecutionTimes, FSchedule, FaultModel, QuasiStaticTree, StaleCoefficients,
    SynthesisRequest, Time, UtilityFunction,
};
use ftqs_sim::{ExecutionScenario, GreedyOnlineScheduler, OnlineScheduler, ScenarioSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated case: which application family, which scenario stream,
/// how many planned faults — mirrors the original proptest strategy.
fn synth_tree(app: &Application, budget: usize) -> QuasiStaticTree {
    Engine::new()
        .session()
        .synthesize(app, &SynthesisRequest::ftqs(budget))
        .expect("schedulable")
        .into_tree()
}

fn synth_ftss(app: &Application) -> FSchedule {
    Engine::new()
        .session()
        .synthesize(app, &SynthesisRequest::ftss())
        .expect("schedulable")
        .root_schedule()
        .clone()
}

fn cases() -> impl Iterator<Item = (u64, u64, usize)> {
    (0..48u64).map(|i| {
        let mut rng = StdRng::seed_from_u64(0xCA5E ^ i);
        (
            rng.gen_range(0u64..8),
            rng.gen::<u64>(),
            rng.gen_range(0usize..=3),
        )
    })
}

fn build_app(seed: u64) -> Application {
    use ftqs_workloads::{synthetic, GeneratorParams};
    let params = GeneratorParams::paper(10 + (seed as usize % 3) * 5);
    let mut rng = StdRng::seed_from_u64(0xD15C + seed);
    synthetic::generate_schedulable(&params, &mut rng, 50)
}

#[test]
fn tree_runtime_never_misses_hard_deadlines() {
    for (app_seed, sc_seed, faults) in cases() {
        let app = build_app(app_seed);
        let faults = faults.min(app.faults().k);
        let tree = synth_tree(&app, 6);
        let runner = OnlineScheduler::new(&app, &tree);
        let sampler = ScenarioSampler::new(&app);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
        let out = runner.run(&sc);
        assert!(
            out.deadline_miss.is_none(),
            "case {app_seed}/{sc_seed}/{faults}"
        );
        // Every hard process completed.
        for h in app.hard_processes() {
            assert!(
                out.completions[h.index()].is_some(),
                "hard process not run; case {app_seed}/{sc_seed}/{faults}"
            );
        }
    }
}

#[test]
fn greedy_runtime_never_misses_hard_deadlines() {
    for (app_seed, sc_seed, faults) in cases() {
        let app = build_app(app_seed);
        let faults = faults.min(app.faults().k);
        let runner = GreedyOnlineScheduler::new(&app);
        let sampler = ScenarioSampler::new(&app);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
        let out = runner.run(&sc);
        assert!(
            out.deadline_miss.is_none(),
            "case {app_seed}/{sc_seed}/{faults}"
        );
        for h in app.hard_processes() {
            assert!(
                out.completions[h.index()].is_some(),
                "case {app_seed}/{sc_seed}/{faults}"
            );
        }
    }
}

#[test]
fn completions_are_strictly_ordered_and_positive() {
    for (app_seed, sc_seed, faults) in cases() {
        let app = build_app(app_seed);
        let faults = faults.min(app.faults().k);
        let root = synth_ftss(&app);
        let order = root.order_key();
        let tree = QuasiStaticTree::single(root);
        let runner = OnlineScheduler::new(&app, &tree);
        let sampler = ScenarioSampler::new(&app);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
        let out = runner.run(&sc);
        // Under a single static schedule, completions follow the schedule
        // order (executed subset) and never move backwards in time (ties
        // are possible: generated BCETs may be zero).
        let mut prev = Time::ZERO;
        for p in order {
            if let Some(at) = out.completions[p.index()] {
                assert!(
                    at >= prev,
                    "completions regress; case {app_seed}/{sc_seed}/{faults}"
                );
                prev = at;
            }
        }
        assert!(out.makespan >= prev, "case {app_seed}/{sc_seed}/{faults}");
    }
}

#[test]
fn utility_matches_stale_recomputation() {
    for (app_seed, sc_seed, faults) in cases() {
        // Recompute the total utility from the outcome's completions and
        // the final dropped set (no revival happens in a 1-node tree, so
        // the final-mask StaleCoefficients equal the runtime-incremental
        // alphas).
        let app = build_app(app_seed);
        let faults = faults.min(app.faults().k);
        let root = synth_ftss(&app);
        let tree = QuasiStaticTree::single(root);
        let runner = OnlineScheduler::new(&app, &tree);
        let sampler = ScenarioSampler::new(&app);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
        let out = runner.run(&sc);

        let dropped: Vec<bool> = app
            .processes()
            .map(|p| out.completions[p.index()].is_none())
            .collect();
        let alpha = StaleCoefficients::compute(&app, &dropped);
        let mut expect = 0.0;
        for p in app.soft_processes() {
            if let (Some(at), Some(u)) = (
                out.completions[p.index()],
                app.process(p).criticality().utility(),
            ) {
                expect += alpha.get(p) * u.value(at);
            }
        }
        assert!(
            (out.utility - expect).abs() < 1e-9,
            "runtime utility {} != recomputed {expect}; case {app_seed}/{sc_seed}/{faults}",
            out.utility
        );
    }
}

#[test]
fn faults_hit_never_exceed_plan() {
    for (app_seed, sc_seed, faults) in cases() {
        let app = build_app(app_seed);
        let faults = faults.min(app.faults().k);
        let tree = synth_tree(&app, 4);
        let runner = OnlineScheduler::new(&app, &tree);
        let sampler = ScenarioSampler::new(&app);
        let sc = sampler.sample(&mut StdRng::seed_from_u64(sc_seed), faults);
        let out = runner.run(&sc);
        assert!(
            out.faults_hit <= faults,
            "case {app_seed}/{sc_seed}/{faults}"
        );
        assert!(
            out.trace.fault_count() <= faults,
            "case {app_seed}/{sc_seed}/{faults}"
        );
    }
}

/// Deterministic exhaustive check on a tiny app: every fault placement and
/// a grid of execution times — stronger than sampling for the core safety
/// property.
#[test]
fn exhaustive_fault_placements_on_small_app() {
    let ms = Time::from_ms;
    let mut b = Application::builder(ms(400), FaultModel::new(2, ms(5)));
    let h1 = b.add_hard(
        "H1",
        ExecutionTimes::uniform(ms(10), ms(40)).unwrap(),
        ms(200),
    );
    let s1 = b.add_soft(
        "S1",
        ExecutionTimes::uniform(ms(10), ms(40)).unwrap(),
        UtilityFunction::step(20.0, [(ms(120), 10.0), (ms(300), 0.0)]).unwrap(),
    );
    let h2 = b.add_hard(
        "H2",
        ExecutionTimes::uniform(ms(10), ms(40)).unwrap(),
        ms(380),
    );
    b.add_dependency(h1, s1).unwrap();
    b.add_dependency(h1, h2).unwrap();
    let app = b.build().unwrap();
    let tree = synth_tree(&app, 4);
    let runner = OnlineScheduler::new(&app, &tree);

    let attempts = app.faults().k + 1;
    let grid = [10u64, 25, 40];
    for &d1 in &grid {
        for &d2 in &grid {
            for &d3 in &grid {
                // Every way to place up to 2 faults on 3 processes.
                for fa in 0..=2usize {
                    for fb in 0..=(2 - fa) {
                        for fc in 0..=(2 - fa - fb) {
                            let durations = vec![
                                vec![ms(d1); attempts],
                                vec![ms(d2); attempts],
                                vec![ms(d3); attempts],
                            ];
                            let faulty = vec![
                                (0..attempts).map(|a| a < fa).collect(),
                                (0..attempts).map(|a| a < fb).collect(),
                                (0..attempts).map(|a| a < fc).collect(),
                            ];
                            let sc = ExecutionScenario::from_tables(durations, faulty);
                            let out = runner.run(&sc);
                            assert!(
                                out.deadline_miss.is_none(),
                                "miss at d=({d1},{d2},{d3}) f=({fa},{fb},{fc})"
                            );
                            assert!(out.completions[h1.index()].is_some());
                            assert!(out.completions[h2.index()].is_some());
                        }
                    }
                }
            }
        }
    }
}
