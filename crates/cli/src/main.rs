//! `ftqs` — CLI for fault-tolerant quasi-static scheduling.
//!
//! ```text
//! ftqs info <spec>                          summary + schedulability
//! ftqs schedule <spec>                      FTSS schedule with analysis
//! ftqs tree <spec> [--budget N] [--dot|--json]
//! ftqs graph <spec>                         task graph as Graphviz DOT
//! ftqs simulate <spec> [--cycles N] [--faults F] [--seed S] [--budget N] [--trace]
//! ftqs compare <spec> [--scenarios N] [--budget N] [--seed S]
//! ftqs trace <spec> [--budget N]            trace one average-case cycle
//! ```
//!
//! `<spec>` is a spec file path, `-` for stdin, or `--example` for the
//! paper's Fig. 1 application.

use ftqs_cli::{
    compare, export_c, graph, info, schedule, simulate, trace_average, tree, TreeFormat,
};
use std::process::ExitCode;

const USAGE: &str =
    "usage: ftqs <info|schedule|tree|graph|simulate|compare|trace|export> <spec> [options]
  <spec>: a spec file path, '-' for stdin, or '--example' for the paper's Fig. 1

  tree     --budget N (default 8), --dot or --json
  simulate --cycles N (1000), --faults F (0), --seed S (1), --budget N (8), --trace
  compare  --scenarios N (500), --budget N (8), --seed S (1)
  trace    --budget N (8)
  export   --budget N (8), --prefix SYM (ftqs)   (emits a C header)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, ftqs_cli::CliError> {
    let cmd = args.first().ok_or("missing command")?;
    let spec = args.get(1).ok_or("missing spec argument")?;
    let value = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let flag = |name: &str| args.iter().any(|a| a == name);

    match cmd.as_str() {
        "info" => info(spec),
        "schedule" => schedule(spec),
        "tree" => {
            let format = if flag("--dot") {
                TreeFormat::Dot
            } else if flag("--json") {
                TreeFormat::Json
            } else {
                TreeFormat::Text
            };
            tree(spec, value("--budget", 8) as usize, format)
        }
        "graph" => graph(spec),
        "simulate" => simulate(
            spec,
            value("--cycles", 1000) as usize,
            value("--faults", 0) as usize,
            value("--seed", 1),
            value("--budget", 8) as usize,
            flag("--trace"),
        ),
        "compare" => compare(
            spec,
            value("--scenarios", 500) as usize,
            value("--budget", 8) as usize,
            value("--seed", 1),
        ),
        "trace" => trace_average(spec, value("--budget", 8) as usize),
        "export" => {
            let prefix = args
                .iter()
                .position(|a| a == "--prefix")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "ftqs".to_string());
            export_c(spec, value("--budget", 8) as usize, &prefix)
        }
        other => Err(format!("unknown command '{other}'").into()),
    }
}
