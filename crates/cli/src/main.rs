//! `ftqs` — CLI for fault-tolerant quasi-static scheduling.
//!
//! Every command loads a spec and drives the `ftqs_core::Engine` /
//! `Session` synthesis API; `info`, `schedule`, `tree`, `compare`, and
//! `robustness` also emit machine-readable reports with `--format json`:
//!
//! ```text
//! ftqs info <spec> [--format json]          summary + schedulability (InfoReport)
//! ftqs schedule <spec> [--format json]      FTSS schedule with analysis (SynthesisReport)
//! ftqs tree <spec> [--budget N] [--dot|--json|--format json]
//!                                           FTQS tree (SynthesisReport)
//! ftqs graph <spec>                         task graph as Graphviz DOT
//! ftqs simulate <spec> [--cycles N] [--faults F] [--seed S] [--budget N]
//!                      [--model NAME] [--trace]
//! ftqs compare <spec> [--scenarios N] [--budget N] [--seed S] [--format json]
//!                                           FTQS/FTSS/FTSF/greedy (CompareReport)
//! ftqs robustness <spec> [--scenarios N] [--budget N] [--seed S] [--model NAME]
//!                        [--format json]   degradation sweep 0..=2k (RobustnessReport)
//! ftqs trace <spec> [--budget N]            trace one average-case cycle
//! ftqs export <spec> [--budget N] [--prefix SYM]
//!                                           C header (prefix must be a C identifier)
//!
//! ftqs submit <family> [--count N] [--size N] [--seed S] [--distinct D]
//!                      [--policy P] [--budget N]
//!                                           generate an NDJSON request batch
//! ftqs serve <batch.ndjson|-> [--workers N] [--queue N] [--cache N] [--stats]
//!                                           batched synthesis through the fleet
//!                                           service (ftqs_service), one JSON
//!                                           response line per request
//! ```
//!
//! `<spec>` is a spec file path, `-` for stdin, or `--example` for the
//! paper's Fig. 1 application. Malformed numeric flags (e.g. `--budget
//! abc`) are hard errors, never silent defaults. The dispatcher itself is
//! [`ftqs_cli::run`], unit-tested in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ftqs_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", ftqs_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
