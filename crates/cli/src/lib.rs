//! # ftqs-cli — command-line front end
//!
//! Drives the whole pipeline from application spec files (see
//! [`ftqs_workloads::spec`]): inspect, synthesize FTSS schedules and FTQS
//! trees, export DOT/JSON, simulate cycles, and compare schedulers.
//!
//! The command implementations return their output as `String` so the
//! binary stays a thin argv dispatcher and everything is unit-testable.

#![warn(missing_docs)]

use ftqs_core::ftqs::{ftqs, FtqsConfig};
use ftqs_core::ftsf::ftsf;
use ftqs_core::ftss::ftss;
use ftqs_core::validate::validate_tree;
use ftqs_core::{Application, FtssConfig, QuasiStaticTree, ScheduleContext, Time};
use ftqs_sim::{ExecutionScenario, GreedyOnlineScheduler, OnlineScheduler, ScenarioSampler};
use ftqs_workloads::spec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt::Write as _;

/// Boxed error alias for command results.
pub type CliError = Box<dyn Error>;

/// Loads an application: `--example` yields the paper's Fig. 1 spec, `-`
/// reads stdin, anything else is a file path.
///
/// # Errors
///
/// I/O errors and spec parse errors (with line numbers).
pub fn load(source: &str) -> Result<Application, CliError> {
    let text = match source {
        "--example" => spec::FIG1_SPEC.to_string(),
        "-" => std::io::read_to_string(std::io::stdin())?,
        path => std::fs::read_to_string(path)?,
    };
    Ok(spec::parse(&text)?)
}

/// `ftqs info <spec>` — application summary and schedulability.
///
/// # Errors
///
/// Load/parse errors.
pub fn info(source: &str) -> Result<String, CliError> {
    let app = load(source)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} processes ({} hard / {} soft), period {}, k = {}, mu = {}",
        app.len(),
        app.hard_processes().count(),
        app.soft_processes().count(),
        app.period(),
        app.faults().k,
        app.faults().mu
    );
    let _ = writeln!(out, "total WCET {}", app.total_wcet());
    match ftss(&app, &ScheduleContext::root(&app), &FtssConfig::default()) {
        Ok(s) => {
            let _ = writeln!(
                out,
                "FTSS: schedulable ({} scheduled, {} dropped)",
                s.entries().len(),
                s.statically_dropped().len()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "FTSS: UNSCHEDULABLE — {e}");
        }
    }
    Ok(out)
}

/// `ftqs schedule <spec>` — the FTSS schedule with worst-case analysis.
///
/// # Errors
///
/// Load/parse errors or [`ftqs_core::SchedulingError`].
pub fn schedule(source: &str) -> Result<String, CliError> {
    let app = load(source)?;
    let s = ftss(&app, &ScheduleContext::root(&app), &FtssConfig::default())?;
    let a = s.analyze(&app);
    let k = app.faults().k;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<20} {:>5} {:>7} {:>9} {:>9} {:>10}",
        "#", "process", "kind", "reexec", "nominal", "worst", "lst(k)"
    );
    for (pos, e) in s.entries().iter().enumerate() {
        let p = app.process(e.process);
        let lst = a.latest_start(&app, e, pos, k);
        let lst_str = if lst == Time::MAX {
            "-".to_string()
        } else {
            lst.to_string()
        };
        let _ = writeln!(
            out,
            "{:<4} {:<20} {:>5} {:>7} {:>9} {:>9} {:>10}",
            pos,
            p.name(),
            if p.is_hard() { "hard" } else { "soft" },
            e.reexecutions,
            a.nominal_completion(pos).to_string(),
            a.worst_completion(pos).to_string(),
            lst_str,
        );
    }
    for d in s.statically_dropped() {
        let _ = writeln!(out, "dropped: {}", app.process(*d).name());
    }
    Ok(out)
}

/// `ftqs tree <spec> [--budget N] [--dot|--json]` — synthesize the
/// quasi-static tree; default output is a readable listing.
///
/// # Errors
///
/// Load/parse/synthesis errors; JSON serialization errors.
pub fn tree(source: &str, budget: usize, format: TreeFormat) -> Result<String, CliError> {
    let app = load(source)?;
    let tree = ftqs(&app, &FtqsConfig::with_budget(budget))?;
    validate_tree(&app, &tree)?;
    match format {
        TreeFormat::Text => Ok(render_tree_text(&app, &tree)),
        TreeFormat::Dot => Ok(tree.to_dot(&app)),
        TreeFormat::Json => Ok(serde_json::to_string_pretty(&tree)?),
    }
}

/// Output format of [`tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFormat {
    /// Human-readable listing.
    Text,
    /// Graphviz digraph.
    Dot,
    /// Serialized tree (the artifact an embedded runtime would load).
    Json,
}

fn render_tree_text(app: &Application, tree: &QuasiStaticTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} schedules, depth {}", tree.len(), tree.depth());
    for (id, node) in tree.iter() {
        let order: Vec<&str> = node
            .schedule
            .order_key()
            .iter()
            .map(|&p| app.process(p).name())
            .collect();
        let _ = writeln!(
            out,
            "node {id} (depth {}): {}",
            node.depth,
            order.join(" -> ")
        );
        for arc in &node.arcs {
            let _ = writeln!(
                out,
                "  if {} completes in {}..={} -> node {}",
                app.process(arc.pivot).name(),
                arc.lo,
                arc.hi,
                arc.child
            );
        }
    }
    out
}

/// `ftqs graph <spec>` — Graphviz DOT of the task graph.
///
/// # Errors
///
/// Load/parse errors.
pub fn graph(source: &str) -> Result<String, CliError> {
    let app = load(source)?;
    Ok(ftqs_graph::dot::to_dot(app.graph(), "application"))
}

/// `ftqs simulate <spec> [--cycles N] [--faults F] [--seed S] [--budget N]
/// [--trace]` — run Monte Carlo cycles against the quasi-static tree.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn simulate(
    source: &str,
    cycles: usize,
    faults: usize,
    seed: u64,
    budget: usize,
    show_trace: bool,
) -> Result<String, CliError> {
    let app = load(source)?;
    let faults = faults.min(app.faults().k);
    let tree = ftqs(&app, &FtqsConfig::with_budget(budget))?;
    let runner = OnlineScheduler::new(&app, &tree);
    let sampler = ScenarioSampler::new(&app);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut utility = ftqs_sim::stats::Accumulator::new();
    let mut switches = 0usize;
    let mut first_trace: Option<String> = None;
    for _ in 0..cycles {
        let sc = sampler.sample(&mut rng, faults);
        let out = runner.run(&sc);
        if out.deadline_miss.is_some() {
            return Err(format!(
                "hard deadline missed — scheduler bug or invalid schedule ({:?})",
                out.deadline_miss
            )
            .into());
        }
        utility.add(out.utility);
        switches += out.trace.switch_count();
        if show_trace && first_trace.is_none() {
            first_trace = Some(out.trace.render(|n| app.process(n).name().to_string()));
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{cycles} cycles with {faults} fault(s): utility {utility}, {:.2} switches/cycle",
        switches as f64 / cycles.max(1) as f64
    );
    if let Some(t) = first_trace {
        let _ = writeln!(out, "\nfirst cycle trace:\n{t}");
    }
    Ok(out)
}

/// `ftqs compare <spec> [--scenarios N] [--budget N] [--seed S]` — mean
/// utility of FTQS / FTSS / FTSF / the purely online greedy scheduler over
/// identical scenarios, per fault count.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn compare(
    source: &str,
    scenarios: usize,
    budget: usize,
    seed: u64,
) -> Result<String, CliError> {
    let app = load(source)?;
    let k = app.faults().k;
    let tree = ftqs(&app, &FtqsConfig::with_budget(budget))?;
    let root = ftss(&app, &ScheduleContext::root(&app), &FtssConfig::default())?;
    let single = QuasiStaticTree::single(root);
    let baseline = QuasiStaticTree::single(ftsf(&app, &FtssConfig::default())?);
    let greedy = GreedyOnlineScheduler::new(&app);
    let sampler = ScenarioSampler::new(&app);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>10} {:>10} {:>10}",
        "faults", "FTQS", "FTSS", "FTSF", "greedy"
    );
    for f in 0..=k {
        let mut sums = [0.0f64; 4];
        let mut rng = StdRng::seed_from_u64(seed ^ (f as u64) << 32);
        for _ in 0..scenarios {
            let sc = sampler.sample(&mut rng, f);
            for (slot, t) in [&tree, &single, &baseline].into_iter().enumerate() {
                let o = OnlineScheduler::new(&app, t).run(&sc);
                if o.deadline_miss.is_some() {
                    return Err("hard deadline missed".into());
                }
                sums[slot] += o.utility;
            }
            sums[3] += greedy.run(&sc).utility;
        }
        let n = scenarios.max(1) as f64;
        let _ = writeln!(
            out,
            "{f:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n
        );
    }
    let _ = writeln!(
        out,
        "\n(identical scenario streams per row; greedy decides online at O(n^2) per decision)"
    );
    Ok(out)
}

/// `ftqs export <spec> [--budget N] [--prefix SYM]` — emit the
/// quasi-static tree as a C header for an embedded runtime.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn export_c(source: &str, budget: usize, prefix: &str) -> Result<String, CliError> {
    let app = load(source)?;
    let tree = ftqs(&app, &FtqsConfig::with_budget(budget))?;
    validate_tree(&app, &tree)?;
    Ok(ftqs_core::export::tree_to_c(&app, &tree, prefix))
}

/// Simulate one [`ExecutionScenario::average_case`] cycle and render its
/// trace — used by `ftqs trace`.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn trace_average(source: &str, budget: usize) -> Result<String, CliError> {
    let app = load(source)?;
    let tree = ftqs(&app, &FtqsConfig::with_budget(budget))?;
    let runner = OnlineScheduler::new(&app, &tree);
    let out = runner.run(&ExecutionScenario::average_case(&app));
    Ok(format!(
        "utility {:.2}\n{}",
        out.utility,
        out.trace.render(|n| app.process(n).name().to_string())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_reports_fig1() {
        let s = info("--example").unwrap();
        assert!(s.contains("3 processes (1 hard / 2 soft)"));
        assert!(s.contains("schedulable"));
    }

    #[test]
    fn schedule_lists_all_entries() {
        let s = schedule("--example").unwrap();
        assert!(s.contains("P1"));
        assert!(s.contains("P2"));
        assert!(s.contains("P3"));
        assert!(s.contains("hard"));
    }

    #[test]
    fn tree_formats_render() {
        let text = tree("--example", 4, TreeFormat::Text).unwrap();
        assert!(text.contains("schedules"));
        let dot = tree("--example", 4, TreeFormat::Dot).unwrap();
        assert!(dot.starts_with("digraph"));
        let json = tree("--example", 4, TreeFormat::Json).unwrap();
        assert!(json.contains("\"nodes\""));
    }

    #[test]
    fn graph_renders_dot() {
        let s = graph("--example").unwrap();
        assert!(s.contains("digraph application"));
        assert!(s.contains("P1"));
    }

    #[test]
    fn simulate_accumulates_cycles() {
        let s = simulate("--example", 50, 1, 7, 4, true).unwrap();
        assert!(s.contains("50 cycles"));
        assert!(s.contains("trace"));
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let s = compare("--example", 50, 4, 3).unwrap();
        assert!(s.contains("FTQS"));
        assert!(s.contains("greedy"));
        // One row per fault count 0..=k (k = 1 for the example).
        assert_eq!(
            s.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            2
        );
    }

    #[test]
    fn trace_average_renders_events() {
        let s = trace_average("--example", 4).unwrap();
        assert!(s.contains("utility"));
        assert!(s.contains("done"));
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(load("/nonexistent/path.ftqs").is_err());
    }

    #[test]
    fn export_emits_c_header() {
        let c = export_c("--example", 4, "fig1").unwrap();
        assert!(c.contains("#include <stdint.h>"));
        assert!(c.contains("fig1_tree"));
    }
}
