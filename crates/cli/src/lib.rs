//! # ftqs-cli — command-line front end
//!
//! Drives the whole pipeline from application spec files (see
//! [`ftqs_workloads::spec`]): inspect, synthesize FTSS schedules and FTQS
//! trees through the [`ftqs_core::Engine`]/[`ftqs_core::Session`] API,
//! export DOT/JSON/C, simulate cycles, and compare schedulers.
//!
//! Every command implementation returns its output as `String` so the
//! binary stays a thin argv dispatcher ([`run`] is the dispatcher itself,
//! unit-testable without a process). `info`, `schedule`, `tree`,
//! `compare`, and `robustness` accept `--format json` and then emit
//! machine-readable reports: `schedule`/`tree` serialize the engine's
//! [`ftqs_core::SynthesisReport`] verbatim (stable field order via serde
//! declaration order), the others serialize the CLI-level
//! [`InfoReport`]/[`CompareReport`]/[`RobustnessReport`] structs.
//!
//! `simulate` and `robustness` expose the sim crate's fault-injection
//! subsystem: `--model` selects a [`ftqs_sim::FaultModel`] preset and
//! `--faults` (or the swept intensity grid) may exceed the design budget
//! `k`, in which case cycles run to completion and the reports carry
//! degradation statistics ([`ftqs_sim::DegradationVerdict`] aggregation)
//! instead of treating a hard miss as a scheduler bug.

#![warn(missing_docs)]

use ftqs_core::{Application, Engine, QuasiStaticTree, SynthesisRequest, Time};
use ftqs_service::{transport, Service, ServiceConfig};
use ftqs_sim::{
    DegradationVerdict, ExecutionScenario, FaultModel, FlatRuntime, FlatScenario,
    GreedyOnlineScheduler, MonteCarlo, NoTrace, OnlineScheduler, RunScratch, ScenarioSampler,
    Trace, FAULT_MODEL_NAMES,
};
use ftqs_workloads::spec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt::Write as _;

/// Boxed error alias for command results (spec/I-O errors plus the typed
/// [`ftqs_core::Error`] from synthesis).
pub type CliError = Box<dyn Error>;

/// Output format of the report-emitting commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// Machine-readable JSON with a stable field order.
    Json,
}

/// Output format of [`tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFormat {
    /// Human-readable listing.
    Text,
    /// Graphviz digraph.
    Dot,
    /// The serialized [`ftqs_core::SynthesisReport`] (the artifact an embedded
    /// runtime or a batch pipeline would load).
    Json,
}

/// Usage banner shared by the binary and error paths.
pub const USAGE: &str =
    "usage: ftqs <info|schedule|tree|graph|simulate|compare|robustness|trace|export> <spec> [options]
       ftqs <submit|serve> ... (batch service; see below)
  <spec>: a spec file path, '-' for stdin, or '--example' for the paper's Fig. 1

  info       --format text|json
  schedule   --format text|json
  tree       --budget N (default 8), --dot | --json | --format json
  simulate   --cycles N (1000), --faults F (0; may exceed k), --seed S (1),
             --budget N (8), --model independent|bursty|intermittent|wcet-stress, --trace
  compare    --scenarios N (500), --budget N (8), --seed S (1), --format text|json
  robustness --scenarios N (500), --budget N (8), --seed S (1),
             --model NAME (default: all models), --format text|json
  trace      --budget N (8)
  export     --budget N (8), --prefix SYM (ftqs; must be a C identifier)

  Service (batched synthesis over newline-delimited JSON):
  submit     <fig9|series-parallel|polar|hyper> — generate an NDJSON request batch:
             --count N (16), --size N (15), --seed S (0),
             --distinct D (=count; D < N makes the batch duplicate-heavy),
             --policy ftss|ftqs|ftsf (ftqs), --budget N (8),
             --priority interactive|bulk (bulk; interactive overtakes queued bulk),
             --deadline-ms N (none; expired-in-queue requests answer
             'deadline exceeded' without synthesis)
  serve      <batch.ndjson|-> — run a batch through the fleet service, one
             JSON response line per request in completion order:
             --workers N (0 = one per core), --queue N (1024), --cache N (256),
             --responses N (1024; bound of the response ring — a slow
             consumer throttles the workers instead of growing memory),
             --stats (append a final service-statistics line: completed,
             rejected, worker panics/respawns, deadline misses, cache)
             Workers are supervised: a panicking job answers as an error
             response, a dead worker thread is respawned, and overload
             surfaces as backpressure — the batch always completes.";

/// The engine configuration every command synthesizes with: defaults plus
/// structural validation (CLI artifacts leave the process, so they are
/// checked before they are printed).
#[must_use]
pub fn engine() -> Engine {
    Engine::new().with_validation(true)
}

/// Loads an application: `--example` yields the paper's Fig. 1 spec, `-`
/// reads stdin, anything else is a file path.
///
/// # Errors
///
/// I/O errors and spec parse errors (with line numbers).
pub fn load(source: &str) -> Result<Application, CliError> {
    let text = match source {
        "--example" => spec::FIG1_SPEC.to_string(),
        "-" => std::io::read_to_string(std::io::stdin())?,
        path => std::fs::read_to_string(path)?,
    };
    Ok(spec::parse(&text)?)
}

/// Machine-readable result of `ftqs info`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoReport {
    /// Total process count.
    pub processes: usize,
    /// Hard process count.
    pub hard: usize,
    /// Soft process count.
    pub soft: usize,
    /// Application period in milliseconds.
    pub period_ms: u64,
    /// Fault budget `k`.
    pub k: usize,
    /// Recovery overhead µ in milliseconds.
    pub mu_ms: u64,
    /// Sum of worst-case execution times in milliseconds.
    pub total_wcet_ms: u64,
    /// Whether FTSS finds a schedulable solution.
    pub schedulable: bool,
    /// Entries in the FTSS schedule (0 when unschedulable).
    pub scheduled: usize,
    /// Statically dropped soft processes (0 when unschedulable).
    pub dropped: usize,
    /// The error message when unschedulable.
    pub error: Option<String>,
}

/// `ftqs info <spec>` — application summary and schedulability.
///
/// # Errors
///
/// Load/parse errors.
pub fn info(source: &str, format: OutputFormat) -> Result<String, CliError> {
    let app = load(source)?;
    let mut session = engine().session();
    let outcome = session.synthesize(&app, &SynthesisRequest::ftss());
    let report = InfoReport {
        processes: app.len(),
        hard: app.hard_processes().count(),
        soft: app.soft_processes().count(),
        period_ms: app.period().as_ms(),
        k: app.faults().k,
        mu_ms: app.faults().mu.as_ms(),
        total_wcet_ms: app.total_wcet().as_ms(),
        schedulable: outcome.is_ok(),
        scheduled: outcome
            .as_ref()
            .map_or(0, |r| r.root_schedule().entries().len()),
        dropped: outcome.as_ref().map_or(0, |r| r.dropped.count),
        error: outcome.as_ref().err().map(ToString::to_string),
    };
    match format {
        OutputFormat::Json => Ok(to_json_line(&report)?),
        OutputFormat::Text => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} processes ({} hard / {} soft), period {}, k = {}, mu = {}",
                report.processes,
                report.hard,
                report.soft,
                app.period(),
                report.k,
                app.faults().mu
            );
            let _ = writeln!(out, "total WCET {}", app.total_wcet());
            if report.schedulable {
                let _ = writeln!(
                    out,
                    "FTSS: schedulable ({} scheduled, {} dropped)",
                    report.scheduled, report.dropped
                );
            } else {
                let _ = writeln!(
                    out,
                    "FTSS: UNSCHEDULABLE — {}",
                    report.error.as_deref().unwrap_or("unknown")
                );
            }
            Ok(out)
        }
    }
}

/// `ftqs schedule <spec>` — the FTSS schedule with worst-case analysis;
/// `--format json` emits the engine's [`ftqs_core::SynthesisReport`].
///
/// # Errors
///
/// Load/parse errors or [`ftqs_core::Error`].
pub fn schedule(source: &str, format: OutputFormat) -> Result<String, CliError> {
    let app = load(source)?;
    let mut session = engine().session();
    let report = session.synthesize(&app, &SynthesisRequest::ftss())?;
    match format {
        OutputFormat::Json => Ok(to_json_pretty(&report)?),
        OutputFormat::Text => {
            let s = report.root_schedule();
            let a = s.analyze(&app);
            let k = app.faults().k;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<4} {:<20} {:>5} {:>7} {:>9} {:>9} {:>10}",
                "#", "process", "kind", "reexec", "nominal", "worst", "lst(k)"
            );
            for (pos, e) in s.entries().iter().enumerate() {
                let p = app.process(e.process);
                let lst = a.latest_start(&app, e, pos, k);
                let lst_str = if lst == Time::MAX {
                    "-".to_string()
                } else {
                    lst.to_string()
                };
                let _ = writeln!(
                    out,
                    "{:<4} {:<20} {:>5} {:>7} {:>9} {:>9} {:>10}",
                    pos,
                    p.name(),
                    if p.is_hard() { "hard" } else { "soft" },
                    e.reexecutions,
                    a.nominal_completion(pos).to_string(),
                    a.worst_completion(pos).to_string(),
                    lst_str,
                );
            }
            for d in s.statically_dropped() {
                let _ = writeln!(out, "dropped: {}", app.process(*d).name());
            }
            Ok(out)
        }
    }
}

/// `ftqs tree <spec> [--budget N] [--dot|--json]` — synthesize the
/// quasi-static tree; default output is a readable listing, `--json` (or
/// `--format json`) the serialized [`ftqs_core::SynthesisReport`].
///
/// # Errors
///
/// Load/parse/synthesis errors; JSON serialization errors.
pub fn tree(source: &str, budget: usize, format: TreeFormat) -> Result<String, CliError> {
    let app = load(source)?;
    let mut session = engine().session();
    let report = session.synthesize(&app, &SynthesisRequest::ftqs(budget))?;
    match format {
        TreeFormat::Text => Ok(render_tree_text(&app, &report.tree)),
        TreeFormat::Dot => Ok(report.tree.to_dot(&app)),
        TreeFormat::Json => Ok(to_json_pretty(&report)?),
    }
}

fn render_tree_text(app: &Application, tree: &QuasiStaticTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} schedules, depth {}", tree.len(), tree.depth());
    for (id, node, schedule) in tree.iter_schedules() {
        let order: Vec<&str> = schedule
            .order_key()
            .iter()
            .map(|&p| app.process(p).name())
            .collect();
        let _ = writeln!(
            out,
            "node {id} (depth {}): {}",
            node.depth,
            order.join(" -> ")
        );
        for arc in &node.arcs {
            let _ = writeln!(
                out,
                "  if {} completes in {}..={} -> node {}",
                app.process(arc.pivot).name(),
                arc.lo,
                arc.hi,
                arc.child
            );
        }
    }
    out
}

/// `ftqs graph <spec>` — Graphviz DOT of the task graph.
///
/// # Errors
///
/// Load/parse errors.
pub fn graph(source: &str) -> Result<String, CliError> {
    let app = load(source)?;
    Ok(ftqs_graph::dot::to_dot(app.graph(), "application"))
}

/// Resolves a `--model` argument to a [`FaultModel`] preset.
///
/// # Errors
///
/// An unknown name — the error lists the valid presets.
pub fn parse_model(name: &str) -> Result<FaultModel, CliError> {
    FaultModel::preset(name).ok_or_else(|| {
        format!(
            "unknown fault model '{name}' (expected one of: {})",
            FAULT_MODEL_NAMES.join(", ")
        )
        .into()
    })
}

/// `ftqs simulate <spec> [--cycles N] [--faults F] [--seed S] [--budget N]
/// [--model NAME] [--trace]` — run Monte Carlo cycles against the
/// quasi-static tree.
///
/// `--faults` may exceed the design budget `k` and `--model` selects a
/// fault process beyond the paper's independent-uniform one; such
/// out-of-contract cycles run to completion and the summary reports how
/// often the runtime degraded or missed a hard deadline. Only when the
/// contract holds (independent model, `faults <= k`) is a hard-deadline
/// miss a hard error, because then it can only be a scheduler bug.
///
/// # Errors
///
/// Load/parse/synthesis errors; an unknown `--model`; an in-contract
/// deadline miss.
pub fn simulate(
    source: &str,
    cycles: usize,
    faults: usize,
    seed: u64,
    budget: usize,
    model_name: &str,
    show_trace: bool,
) -> Result<String, CliError> {
    let app = load(source)?;
    let model = parse_model(model_name)?;
    let k = app.faults().k;
    let in_contract = model == FaultModel::Independent && faults <= k;
    let mut session = engine().session();
    let tree = session
        .synthesize(&app, &SynthesisRequest::ftqs(budget))?
        .into_tree();
    // The flat runtime executes the cycles allocation-free; scenarios are
    // sampled into a reusable flat buffer from a single RNG stream (the
    // draw sequence is identical to the boxed sampler's).
    let runtime = FlatRuntime::new(&app, &tree);
    let sampler = ScenarioSampler::with_model(&app, model);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario = FlatScenario::new();
    let mut scratch = RunScratch::new();
    let mut utility = ftqs_sim::stats::Accumulator::new();
    let mut switches = 0usize;
    let mut misses = 0usize;
    let mut degraded = 0usize;
    let mut first_trace: Option<String> = None;
    for cycle in 0..cycles {
        sampler.sample_into(&mut rng, faults, &mut scenario);
        // Only the first cycle records events (and only under --trace);
        // every other cycle runs with the no-op sink.
        let out = if show_trace && cycle == 0 {
            let mut trace = Trace::new();
            let out = runtime.run_cycle(&scenario, &mut scratch, &mut trace);
            first_trace = Some(trace.render(|n| app.process(n).name().to_string()));
            out
        } else {
            runtime.run_cycle(&scenario, &mut scratch, &mut NoTrace)
        };
        match out.verdict {
            DegradationVerdict::HardMiss { .. } if in_contract => {
                return Err(format!(
                    "hard deadline missed in-contract — scheduler bug or invalid \
                     schedule ({:?})",
                    out.deadline_miss
                )
                .into());
            }
            DegradationVerdict::HardMiss { .. } => misses += 1,
            DegradationVerdict::Degraded { .. } => degraded += 1,
            DegradationVerdict::InModel => {}
        }
        utility.add(out.utility);
        switches += out.switches;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{cycles} cycles with {faults} fault(s) ({} model): utility {utility}, \
         {:.2} switches/cycle",
        model.name(),
        switches as f64 / cycles.max(1) as f64
    );
    if !in_contract {
        let _ = writeln!(
            out,
            "out of contract (k = {k}): {degraded} degraded cycle(s), \
             {misses} hard-deadline miss(es)"
        );
    }
    if let Some(t) = first_trace {
        let _ = writeln!(out, "\nfirst cycle trace:\n{t}");
    }
    Ok(out)
}

/// One row of a [`CompareReport`]: mean utilities at one fault count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRow {
    /// Number of injected faults per scenario.
    pub faults: usize,
    /// Mean utility of the quasi-static tree.
    pub ftqs: f64,
    /// Mean utility of the single FTSS schedule.
    pub ftss: f64,
    /// Mean utility of the FTSF baseline.
    pub ftsf: f64,
    /// Mean utility of the purely online greedy scheduler.
    pub greedy: f64,
}

/// Machine-readable result of `ftqs compare`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Scenarios evaluated per fault count.
    pub scenarios: usize,
    /// FTQS schedule budget.
    pub budget: usize,
    /// Scenario-stream seed.
    pub seed: u64,
    /// One row per fault count `0..=k`, identical scenario streams per
    /// row across schedulers.
    pub rows: Vec<CompareRow>,
}

/// `ftqs compare <spec> [--scenarios N] [--budget N] [--seed S]` — mean
/// utility of FTQS / FTSS / FTSF / the purely online greedy scheduler over
/// identical scenarios, per fault count.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn compare(
    source: &str,
    scenarios: usize,
    budget: usize,
    seed: u64,
    format: OutputFormat,
) -> Result<String, CliError> {
    let app = load(source)?;
    let k = app.faults().k;
    let mut session = engine().session();
    let tree = session
        .synthesize(&app, &SynthesisRequest::ftqs(budget))?
        .into_tree();
    let single = session
        .synthesize(&app, &SynthesisRequest::ftss())?
        .into_tree();
    let baseline = session
        .synthesize(&app, &SynthesisRequest::ftsf())?
        .into_tree();
    let greedy = GreedyOnlineScheduler::new(&app);
    let sampler = ScenarioSampler::new(&app);

    let mut rows = Vec::with_capacity(k + 1);
    for f in 0..=k {
        let mut sums = [0.0f64; 4];
        let mut rng = StdRng::seed_from_u64(seed ^ (f as u64) << 32);
        for _ in 0..scenarios {
            let sc = sampler.sample(&mut rng, f);
            for (slot, t) in [&tree, &single, &baseline].into_iter().enumerate() {
                let o = OnlineScheduler::new(&app, t).run(&sc);
                if o.deadline_miss.is_some() {
                    return Err("hard deadline missed".into());
                }
                sums[slot] += o.utility;
            }
            sums[3] += greedy.run(&sc).utility;
        }
        let n = scenarios.max(1) as f64;
        rows.push(CompareRow {
            faults: f,
            ftqs: sums[0] / n,
            ftss: sums[1] / n,
            ftsf: sums[2] / n,
            greedy: sums[3] / n,
        });
    }
    let report = CompareReport {
        scenarios,
        budget,
        seed,
        rows,
    };
    match format {
        OutputFormat::Json => Ok(to_json_pretty(&report)?),
        OutputFormat::Text => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:>7} {:>10} {:>10} {:>10} {:>10}",
                "faults", "FTQS", "FTSS", "FTSF", "greedy"
            );
            for r in &report.rows {
                let _ = writeln!(
                    out,
                    "{:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    r.faults, r.ftqs, r.ftss, r.ftsf, r.greedy
                );
            }
            let _ = writeln!(
                out,
                "\n(identical scenario streams per row; greedy decides online at O(n^2) per decision)"
            );
            Ok(out)
        }
    }
}

/// One cell of a [`RobustnessReport`]: one (model, intensity, policy)
/// combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessCell {
    /// Fault-model preset name.
    pub model: String,
    /// Planned faults per cycle (may exceed the design budget `k`).
    pub intensity: usize,
    /// Scheduling policy (`ftqs`, `ftss`, or `ftsf`).
    pub policy: String,
    /// Mean total utility.
    pub utility_mean: f64,
    /// Fraction of scenarios that missed a hard deadline.
    pub miss_rate: f64,
    /// Fraction of scenarios that degraded without a hard miss.
    pub degraded_rate: f64,
    /// Mean materialized faults per cycle.
    pub faults_mean: f64,
    /// Mean WCET overruns per cycle.
    pub overruns_mean: f64,
}

/// Machine-readable result of `ftqs robustness`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Scenarios evaluated per cell.
    pub scenarios: usize,
    /// FTQS schedule budget.
    pub budget: usize,
    /// Scenario-stream seed.
    pub seed: u64,
    /// The application's design fault budget.
    pub k: usize,
    /// Fault intensities swept (`0..=2k`).
    pub intensities: Vec<usize>,
    /// Fault-model presets swept.
    pub models: Vec<String>,
    /// One cell per model × intensity × policy, in that nesting order.
    pub cells: Vec<RobustnessCell>,
}

/// `ftqs robustness <spec> [--scenarios N] [--budget N] [--seed S]
/// [--model NAME] [--format text|json]` — degradation sweep past the
/// design point: evaluates FTQS / FTSS / FTSF at fault intensities
/// `0..=2k` under each fault-model preset (or just `--model`), reporting
/// mean utility, hard-miss rate, and degradation rate per cell.
///
/// # Errors
///
/// Load/parse/synthesis errors; an unknown `--model`.
pub fn robustness(
    source: &str,
    scenarios: usize,
    budget: usize,
    seed: u64,
    model_filter: Option<&str>,
    format: OutputFormat,
) -> Result<String, CliError> {
    let app = load(source)?;
    let k = app.faults().k;
    let models: Vec<FaultModel> = match model_filter {
        Some(name) => vec![parse_model(name)?],
        None => FAULT_MODEL_NAMES
            .iter()
            .map(|n| parse_model(n))
            .collect::<Result<_, _>>()?,
    };
    let intensities: Vec<usize> = (0..=2 * k).collect();
    let mut session = engine().session();
    let tree = session
        .synthesize(&app, &SynthesisRequest::ftqs(budget))?
        .into_tree();
    let single = session
        .synthesize(&app, &SynthesisRequest::ftss())?
        .into_tree();
    let baseline = session
        .synthesize(&app, &SynthesisRequest::ftsf())?
        .into_tree();
    let policies = [("ftqs", &tree), ("ftss", &single), ("ftsf", &baseline)];
    let mc = MonteCarlo {
        scenarios,
        seed,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
    };

    let mut cells = Vec::with_capacity(models.len() * intensities.len() * policies.len());
    for &model in &models {
        // Evaluate policy-major so each tree's sweep shares its sampler
        // state, then interleave into intensity-major report order.
        let sweeps: Vec<Vec<ftqs_sim::Evaluation>> = policies
            .iter()
            .map(|(_, t)| mc.evaluate_intensity_sweep(&app, t, model, &intensities))
            .collect();
        for (fi, &intensity) in intensities.iter().enumerate() {
            for (pi, (policy, _)) in policies.iter().enumerate() {
                let e = &sweeps[pi][fi];
                cells.push(RobustnessCell {
                    model: model.name().to_string(),
                    intensity,
                    policy: (*policy).to_string(),
                    utility_mean: e.utility.mean(),
                    miss_rate: e.miss_rate(),
                    degraded_rate: e.degraded_rate(),
                    faults_mean: e.faults.mean(),
                    overruns_mean: e.overruns.mean(),
                });
            }
        }
    }
    let report = RobustnessReport {
        scenarios,
        budget,
        seed,
        k,
        intensities,
        models: models.iter().map(|m| m.name().to_string()).collect(),
        cells,
    };
    match format {
        OutputFormat::Json => Ok(to_json_pretty(&report)?),
        OutputFormat::Text => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "design budget k = {k}; intensities 0..={} ({} in-model, {} beyond); \
                 {scenarios} scenarios per cell",
                2 * k,
                k + 1,
                k
            );
            for model in &report.models {
                let _ = writeln!(out, "\nmodel {model}");
                let _ = writeln!(
                    out,
                    "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    "faults", "FTQS", "FTSS", "FTSF", "miss", "degraded"
                );
                for &f in &report.intensities {
                    let row: Vec<&RobustnessCell> = report
                        .cells
                        .iter()
                        .filter(|c| c.model == *model && c.intensity == f)
                        .collect();
                    let by = |policy: &str| {
                        row.iter()
                            .find(|c| c.policy == policy)
                            .map_or(0.0, |c| c.utility_mean)
                    };
                    // Rates of the FTQS cell — the paper's primary policy.
                    let ftqs = row.iter().find(|c| c.policy == "ftqs");
                    let _ = writeln!(
                        out,
                        "{:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.4} {:>10.4}",
                        f,
                        by("ftqs"),
                        by("ftss"),
                        by("ftsf"),
                        ftqs.map_or(0.0, |c| c.miss_rate),
                        ftqs.map_or(0.0, |c| c.degraded_rate),
                    );
                }
            }
            let _ = writeln!(
                out,
                "\n(miss/degraded rates are the FTQS policy's; --format json has all cells)"
            );
            Ok(out)
        }
    }
}

/// `ftqs export <spec> [--budget N] [--prefix SYM]` — emit the
/// quasi-static tree as a C header for an embedded runtime. The prefix is
/// interpolated into C identifiers, so it must be one.
///
/// # Errors
///
/// Load/parse/synthesis errors; an invalid `prefix`.
pub fn export_c(source: &str, budget: usize, prefix: &str) -> Result<String, CliError> {
    if !is_c_identifier(prefix) {
        return Err(format!(
            "--prefix '{prefix}' is not a valid C identifier \
             (expected [A-Za-z_][A-Za-z0-9_]*)"
        )
        .into());
    }
    let app = load(source)?;
    // The session from engine() validates every synthesized tree before
    // reporting it, so the header is emitted from a checked artifact.
    let mut session = engine().session();
    let tree = session
        .synthesize(&app, &SynthesisRequest::ftqs(budget))?
        .into_tree();
    Ok(ftqs_core::export::tree_to_c(&app, &tree, prefix))
}

/// `true` if `s` is a valid C identifier (what `export --prefix` splices
/// into the generated header).
#[must_use]
pub fn is_c_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Simulate one [`ExecutionScenario::average_case`] cycle and render its
/// trace — used by `ftqs trace`.
///
/// # Errors
///
/// Load/parse/synthesis errors.
pub fn trace_average(source: &str, budget: usize) -> Result<String, CliError> {
    let app = load(source)?;
    let mut session = engine().session();
    let tree = session
        .synthesize(&app, &SynthesisRequest::ftqs(budget))?
        .into_tree();
    let runner = OnlineScheduler::new(&app, &tree);
    let out = runner.run(&ExecutionScenario::average_case(&app));
    Ok(format!(
        "utility {:.2}\n{}",
        out.utility,
        out.trace.render(|n| app.process(n).name().to_string())
    ))
}

/// `ftqs submit <family>` — renders an NDJSON request batch for [`serve`]
/// (or any transport consumer). Seeds cycle through `distinct` values
/// starting at `seed`, so `distinct < count` produces the duplicate-heavy
/// mixes that exercise the service's artifact cache. `priority` and
/// `deadline_ms` (both optional) stamp every request with the service's
/// scheduling knobs: interactive requests overtake queued bulk ones, and
/// a request still queued past its deadline answers `deadline exceeded`
/// without synthesis.
///
/// # Errors
///
/// Unknown family, policy, or priority names, or a zero
/// `count`/`size`/`distinct`.
#[allow(clippy::too_many_arguments)]
pub fn submit(
    family: &str,
    count: usize,
    size: usize,
    seed: u64,
    distinct: usize,
    policy: &str,
    budget: usize,
    priority: Option<&str>,
    deadline_ms: Option<u64>,
) -> Result<String, CliError> {
    if ftqs_workloads::Family::parse(family).is_none() {
        let names: Vec<&str> = ftqs_workloads::Family::ALL
            .iter()
            .map(|f| f.name())
            .collect();
        return Err(format!(
            "unknown workload family '{family}' (expected one of: {})",
            names.join(", ")
        )
        .into());
    }
    if !matches!(policy, "ftss" | "ftqs" | "ftsf") {
        return Err(format!("unknown policy '{policy}' (ftss|ftqs|ftsf)").into());
    }
    if !matches!(priority, None | Some("interactive") | Some("bulk")) {
        return Err(format!(
            "unknown priority '{}' (interactive|bulk)",
            priority.unwrap_or_default()
        )
        .into());
    }
    if count == 0 || size == 0 || distinct == 0 {
        return Err("--count, --size, and --distinct must be positive".into());
    }
    let mut out = String::new();
    for i in 0..count {
        let line = transport::preset_request_line(
            i as u64,
            family,
            size,
            seed + (i % distinct) as u64,
            policy,
            budget,
            priority,
            deadline_ms,
        );
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// `ftqs serve <batch.ndjson|->` — runs an NDJSON request batch through
/// the fleet service ([`ftqs_service::Service`]) and returns one JSON
/// response line per request in completion order. Malformed request
/// lines answer with a per-line error response; the rest of the batch is
/// unaffected. The workers are supervised (a panicking job answers as an
/// error response; a dead thread is respawned) and both buffers are
/// bounded — `response_capacity` caps the response ring, so a slow
/// output sink throttles the fleet instead of growing memory. With
/// `with_stats`, a final line carries the [`ftqs_service::ServiceStats`]
/// snapshot (completed/rejected/panics/respawns/deadline-miss counters
/// plus queue, ring, and cache occupancy).
///
/// # Errors
///
/// I/O errors opening or reading the batch. Per-request failures are
/// response lines, not errors.
pub fn serve(
    batch: &str,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    response_capacity: usize,
    with_stats: bool,
) -> Result<String, CliError> {
    let mut service = Service::start(ServiceConfig {
        workers,
        queue_capacity,
        cache_capacity,
        response_capacity,
        intra_parallelism: 1,
        engine: engine(),
        ..ServiceConfig::default()
    });
    let mut out = Vec::new();
    match batch {
        "-" => {
            let stdin = std::io::stdin();
            transport::serve(&service, stdin.lock(), &mut out)?;
        }
        path => {
            let file = std::io::BufReader::new(std::fs::File::open(path)?);
            transport::serve(&service, file, &mut out)?;
        }
    }
    let stats = service.shutdown();
    let mut rendered = String::from_utf8(out).expect("responses are UTF-8 JSON");
    if with_stats {
        rendered.push_str(&to_json_line(&stats)?);
    }
    Ok(rendered)
}

fn to_json_pretty<T: Serialize>(value: &T) -> Result<String, CliError> {
    let mut s = serde_json::to_string_pretty(value)?;
    s.push('\n');
    Ok(s)
}

fn to_json_line<T: Serialize>(value: &T) -> Result<String, CliError> {
    let mut s = serde_json::to_string(value)?;
    s.push('\n');
    Ok(s)
}

// ---------------------------------------------------------------------------
// argv dispatch (the `ftqs` binary is a thin wrapper around `run`)
// ---------------------------------------------------------------------------

/// Parses the value following flag `name` as a number; absent flag →
/// `default`, malformed or missing value → a hard error naming the flag.
fn parse_value(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(default);
    };
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("missing value for {name}"))?;
    raw.parse()
        .map_err(|_| format!("invalid value for {name}: '{raw}' is not a number").into())
}

/// Parses the value following a string-valued flag `name`; absent flag →
/// `None`, flag without a value → a hard error naming the flag.
fn parse_str(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    args.get(i + 1)
        .cloned()
        .map(Some)
        .ok_or_else(|| format!("missing value for {name}").into())
}

/// Parses `--format text|json`; absent → `Text`, anything else → error.
fn parse_format(args: &[String]) -> Result<OutputFormat, CliError> {
    let Some(i) = args.iter().position(|a| a == "--format") else {
        return Ok(OutputFormat::Text);
    };
    match args.get(i + 1).map(String::as_str) {
        Some("json") => Ok(OutputFormat::Json),
        Some("text") => Ok(OutputFormat::Text),
        Some(other) => Err(format!("invalid value for --format: '{other}' (text|json)").into()),
        None => Err("missing value for --format".into()),
    }
}

/// Dispatches one CLI invocation (`args` excludes the program name) and
/// returns the textual output.
///
/// # Errors
///
/// Unknown commands/flags, malformed numeric flags, and every command
/// error (load/parse/synthesis/serialization).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().ok_or("missing command")?;
    let spec = args.get(1).ok_or("missing spec argument")?;
    let value = |name: &str, default: u64| parse_value(args, name, default);
    let flag = |name: &str| args.iter().any(|a| a == name);

    match cmd.as_str() {
        "info" => info(spec, parse_format(args)?),
        "schedule" => schedule(spec, parse_format(args)?),
        "tree" => {
            // Validate --format even when --dot/--json decide the output,
            // so a typo like `--format jsn` is reported, not ignored.
            let format_flag = parse_format(args)?;
            let format = if flag("--dot") {
                TreeFormat::Dot
            } else if flag("--json") || format_flag == OutputFormat::Json {
                TreeFormat::Json
            } else {
                TreeFormat::Text
            };
            tree(spec, value("--budget", 8)? as usize, format)
        }
        "graph" => graph(spec),
        "simulate" => simulate(
            spec,
            value("--cycles", 1000)? as usize,
            value("--faults", 0)? as usize,
            value("--seed", 1)?,
            value("--budget", 8)? as usize,
            parse_str(args, "--model")?
                .as_deref()
                .unwrap_or("independent"),
            flag("--trace"),
        ),
        "compare" => compare(
            spec,
            value("--scenarios", 500)? as usize,
            value("--budget", 8)? as usize,
            value("--seed", 1)?,
            parse_format(args)?,
        ),
        "robustness" => robustness(
            spec,
            value("--scenarios", 500)? as usize,
            value("--budget", 8)? as usize,
            value("--seed", 1)?,
            parse_str(args, "--model")?.as_deref(),
            parse_format(args)?,
        ),
        "trace" => trace_average(spec, value("--budget", 8)? as usize),
        "submit" => {
            let count = value("--count", 16)? as usize;
            // --deadline-ms is present-or-absent (there is no "default
            // deadline"), so it parses through the string path.
            let deadline_ms = parse_str(args, "--deadline-ms")?
                .map(|raw| {
                    raw.parse::<u64>().map_err(|_| {
                        format!("invalid value for --deadline-ms: '{raw}' is not a number")
                    })
                })
                .transpose()?;
            submit(
                spec,
                count,
                value("--size", 15)? as usize,
                value("--seed", 0)?,
                value("--distinct", count as u64)? as usize,
                parse_str(args, "--policy")?.as_deref().unwrap_or("ftqs"),
                value("--budget", 8)? as usize,
                parse_str(args, "--priority")?.as_deref(),
                deadline_ms,
            )
        }
        "serve" => serve(
            spec,
            value("--workers", 0)? as usize,
            value("--queue", 1024)? as usize,
            value("--cache", 256)? as usize,
            value("--responses", 1024)? as usize,
            flag("--stats"),
        ),
        "export" => {
            let prefix = match args.iter().position(|a| a == "--prefix") {
                Some(i) => args
                    .get(i + 1)
                    .cloned()
                    .ok_or("missing value for --prefix")?,
                None => "ftqs".to_string(),
            };
            export_c(spec, value("--budget", 8)? as usize, &prefix)
        }
        other => Err(format!("unknown command '{other}'").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::SynthesisReport;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn info_reports_fig1() {
        let s = info("--example", OutputFormat::Text).unwrap();
        assert!(s.contains("3 processes (1 hard / 2 soft)"));
        assert!(s.contains("schedulable"));
    }

    #[test]
    fn info_json_is_machine_readable() {
        let s = info("--example", OutputFormat::Json).unwrap();
        let report: InfoReport = serde_json::from_str(s.trim()).unwrap();
        assert_eq!(report.processes, 3);
        assert_eq!(report.hard, 1);
        assert!(report.schedulable);
        assert_eq!(report.error, None);
    }

    #[test]
    fn schedule_lists_all_entries() {
        let s = schedule("--example", OutputFormat::Text).unwrap();
        assert!(s.contains("P1"));
        assert!(s.contains("P2"));
        assert!(s.contains("P3"));
        assert!(s.contains("hard"));
    }

    #[test]
    fn schedule_json_is_a_synthesis_report() {
        let s = schedule("--example", OutputFormat::Json).unwrap();
        let report: SynthesisReport = serde_json::from_str(&s).unwrap();
        assert_eq!(report.stats.schedules, 1);
        assert_eq!(report.tree.root_schedule().entries().len(), 3);
    }

    #[test]
    fn tree_formats_render() {
        let text = tree("--example", 4, TreeFormat::Text).unwrap();
        assert!(text.contains("schedules"));
        let dot = tree("--example", 4, TreeFormat::Dot).unwrap();
        assert!(dot.starts_with("digraph"));
        let json = tree("--example", 4, TreeFormat::Json).unwrap();
        assert!(json.contains("\"tree\""));
        let report: SynthesisReport = serde_json::from_str(&json).unwrap();
        assert!(report.stats.schedules >= 2);
    }

    #[test]
    fn graph_renders_dot() {
        let s = graph("--example").unwrap();
        assert!(s.contains("digraph application"));
        assert!(s.contains("P1"));
    }

    #[test]
    fn simulate_accumulates_cycles() {
        let s = simulate("--example", 50, 1, 7, 4, "independent", true).unwrap();
        assert!(s.contains("50 cycles"));
        assert!(s.contains("independent model"));
        assert!(s.contains("trace"));
        // In contract: no degradation summary line.
        assert!(!s.contains("out of contract"));
    }

    #[test]
    fn simulate_runs_out_of_contract_without_erroring() {
        // Fig. 1 has k = 1; planning 4 faults under the intermittent model
        // is far out of contract — the command must complete and report
        // degradation statistics instead of failing.
        let s = simulate("--example", 40, 4, 7, 4, "intermittent", false).unwrap();
        assert!(s.contains("4 fault(s) (intermittent model)"));
        assert!(s.contains("out of contract (k = 1)"));
        assert!(s.contains("degraded cycle(s)"));
    }

    #[test]
    fn simulate_rejects_unknown_model() {
        let err = simulate("--example", 10, 0, 1, 4, "cosmic-rays", false)
            .unwrap_err()
            .to_string();
        assert!(err.contains("cosmic-rays"), "{err}");
        assert!(err.contains("independent"), "must list presets: {err}");
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let s = compare("--example", 50, 4, 3, OutputFormat::Text).unwrap();
        assert!(s.contains("FTQS"));
        assert!(s.contains("greedy"));
        // One row per fault count 0..=k (k = 1 for the example).
        assert_eq!(
            s.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            2
        );
    }

    #[test]
    fn compare_json_round_trips() {
        let s = compare("--example", 50, 4, 3, OutputFormat::Json).unwrap();
        let report: CompareReport = serde_json::from_str(&s).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.scenarios, 50);
        assert!(report.rows[0].ftqs >= report.rows[0].ftss - 1e-9);
    }

    #[test]
    fn robustness_sweeps_all_models_and_crosses_the_budget() {
        let s = robustness("--example", 30, 4, 3, None, OutputFormat::Text).unwrap();
        assert!(s.contains("design budget k = 1"));
        for model in FAULT_MODEL_NAMES {
            assert!(s.contains(&format!("model {model}")), "missing {model}");
        }
        // Intensities 0..=2k with k = 1 → rows for f = 0, 1, 2 per model.
        assert!(s.contains("FTQS") && s.contains("FTSF"));
    }

    #[test]
    fn robustness_json_round_trips() {
        let s = robustness("--example", 30, 4, 3, None, OutputFormat::Json).unwrap();
        let report: RobustnessReport = serde_json::from_str(&s).unwrap();
        assert_eq!(report.k, 1);
        assert_eq!(report.intensities, vec![0, 1, 2]);
        assert_eq!(report.models.len(), FAULT_MODEL_NAMES.len());
        // models × intensities × policies.
        assert_eq!(report.cells.len(), 4 * 3 * 3);
        // In-model cells of duration-bounded models never miss.
        for c in report
            .cells
            .iter()
            .filter(|c| c.model != "wcet-stress" && c.intensity <= report.k)
        {
            assert_eq!(
                c.miss_rate, 0.0,
                "in-model miss: {}/{}/{}",
                c.model, c.intensity, c.policy
            );
        }
    }

    #[test]
    fn robustness_model_filter_narrows_the_sweep() {
        let s = robustness("--example", 20, 4, 3, Some("bursty"), OutputFormat::Json).unwrap();
        let report: RobustnessReport = serde_json::from_str(&s).unwrap();
        assert_eq!(report.models, vec!["bursty".to_string()]);
        assert!(report.cells.iter().all(|c| c.model == "bursty"));

        let err = robustness("--example", 20, 4, 3, Some("nope"), OutputFormat::Text)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown fault model"), "{err}");
    }

    #[test]
    fn trace_average_renders_events() {
        let s = trace_average("--example", 4).unwrap();
        assert!(s.contains("utility"));
        assert!(s.contains("done"));
    }

    #[test]
    fn load_rejects_missing_file() {
        assert!(load("/nonexistent/path.ftqs").is_err());
    }

    #[test]
    fn export_emits_c_header() {
        let c = export_c("--example", 4, "fig1").unwrap();
        assert!(c.contains("#include <stdint.h>"));
        assert!(c.contains("fig1_tree"));
    }

    #[test]
    fn export_rejects_non_identifier_prefixes() {
        for bad in ["", "1abc", "my-prefix", "a b", "x;", "π", "a\"b"] {
            let err = export_c("--example", 4, bad).unwrap_err().to_string();
            assert!(err.contains("C identifier"), "'{bad}' slipped through");
        }
        for good in ["ftqs", "_t", "A9_b"] {
            assert!(export_c("--example", 4, good).is_ok(), "'{good}' rejected");
        }
    }

    // ----- service commands ------------------------------------------------

    #[test]
    fn submit_generates_parseable_duplicate_heavy_batches() {
        let batch = submit("fig9", 8, 12, 5, 2, "ftqs", 4, None, None).unwrap();
        let lines: Vec<&str> = batch.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let req = ftqs_service::transport::parse_request(line).unwrap();
            assert_eq!(req.id, i as u64);
        }
        // Two distinct seeds cycling (5, 6, 5, 6, …), so lines 0 and 2
        // name the same application while line 1 differs.
        let source = |line: &str| {
            ftqs_service::transport::parse_request(line)
                .unwrap()
                .source
                .digest()
        };
        assert_eq!(source(lines[0]), source(lines[2]));
        assert_ne!(source(lines[0]), source(lines[1]));
    }

    #[test]
    fn submit_validates_family_and_policy() {
        let err = submit("escher", 4, 12, 0, 4, "ftqs", 8, None, None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("escher") && err.contains("fig9"), "{err}");
        let err = submit("fig9", 4, 12, 0, 4, "edf", 8, None, None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("edf"), "{err}");
        let err = submit("fig9", 4, 12, 0, 4, "ftqs", 8, Some("vip"), None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("vip") && err.contains("interactive"), "{err}");
        assert!(submit("fig9", 0, 12, 0, 4, "ftqs", 8, None, None).is_err());
    }

    #[test]
    fn submit_stamps_priority_and_deadline_on_every_line() {
        let batch = submit(
            "fig9",
            3,
            12,
            5,
            1,
            "ftss",
            8,
            Some("interactive"),
            Some(250),
        )
        .unwrap();
        for line in batch.lines() {
            let req = ftqs_service::transport::parse_request(line).unwrap();
            assert_eq!(req.priority, ftqs_service::Priority::Interactive);
            assert_eq!(req.deadline, Some(std::time::Duration::from_millis(250)));
        }
        // Omitted knobs stay off the wire entirely.
        let bare = submit("fig9", 1, 12, 5, 1, "ftss", 8, None, None).unwrap();
        assert!(!bare.contains("priority") && !bare.contains("deadline_ms"));
    }

    #[test]
    fn serve_answers_a_submitted_batch_end_to_end() {
        // submit | serve round trip through a temp file, duplicate-heavy so
        // the cache path is exercised; the final --stats line must report a
        // nonzero hit count.
        let batch = submit("fig9", 6, 12, 5, 1, "ftqs", 4, None, None).unwrap();
        let path = std::env::temp_dir().join("ftqs-cli-serve-test.ndjson");
        std::fs::write(&path, &batch).unwrap();
        let out = serve(path.to_str().unwrap(), 1, 16, 8, 64, true).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7, "6 responses + 1 stats line");
        for line in &lines[..6] {
            let response: ftqs_service::transport::WireResponse =
                serde_json::from_str(line).unwrap();
            assert!(response.ok, "seed 5 at size 12 is schedulable");
        }
        let stats: ftqs_service::ServiceStats = serde_json::from_str(lines[6]).unwrap();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache.hits, 5, "one cold build, five hits");
    }

    #[test]
    fn serve_keeps_going_past_malformed_lines() {
        let path = std::env::temp_dir().join("ftqs-cli-serve-poisoned.ndjson");
        std::fs::write(
            &path,
            "{\"id\": 1, \"preset\": {\"family\": \"fig9\", \"size\": 12, \"seed\": 5}}\n\
             not json\n\
             {\"id\": 2, \"preset\": {\"family\": \"fig9\", \"size\": 12, \"seed\": 5}}\n",
        )
        .unwrap();
        let out = serve(path.to_str().unwrap(), 1, 16, 8, 64, false).unwrap();
        std::fs::remove_file(&path).ok();
        let responses: Vec<ftqs_service::transport::WireResponse> = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(responses.len(), 3);
        assert_eq!(responses.iter().filter(|r| r.ok).count(), 2);
        let bad = responses.iter().find(|r| !r.ok).unwrap();
        assert!(bad.error.as_ref().unwrap().contains("line 2"));
    }

    #[test]
    fn serve_rejects_missing_batch_files() {
        assert!(serve("/nonexistent/batch.ndjson", 1, 4, 4, 4, false).is_err());
    }

    // ----- argv dispatch ---------------------------------------------------

    #[test]
    fn run_dispatches_every_command() {
        for cmd in ["info", "schedule", "tree", "graph", "trace"] {
            assert!(run(&args(&[cmd, "--example"])).is_ok(), "{cmd} failed");
        }
        assert!(run(&args(&["simulate", "--example", "--cycles", "5"])).is_ok());
        assert!(run(&args(&[
            "simulate",
            "--example",
            "--cycles",
            "5",
            "--faults",
            "3",
            "--model",
            "bursty"
        ]))
        .is_ok());
        assert!(run(&args(&["compare", "--example", "--scenarios", "5"])).is_ok());
        assert!(run(&args(&[
            "robustness",
            "--example",
            "--scenarios",
            "5",
            "--model",
            "independent"
        ]))
        .is_ok());
        assert!(run(&args(&["export", "--example", "--prefix", "x"])).is_ok());
        assert!(run(&args(&["submit", "fig9", "--count", "2", "--size", "12"])).is_ok());
    }

    #[test]
    fn run_dispatches_submit_into_serve() {
        let batch = run(&args(&[
            "submit",
            "fig9",
            "--count",
            "4",
            "--size",
            "12",
            "--seed",
            "5",
            "--distinct",
            "1",
            "--priority",
            "interactive",
            "--deadline-ms",
            "60000",
        ]))
        .unwrap();
        assert!(batch.contains("\"priority\"") && batch.contains("\"deadline_ms\""));
        let path = std::env::temp_dir().join("ftqs-cli-dispatch.ndjson");
        std::fs::write(&path, &batch).unwrap();
        let out = run(&args(&[
            "serve",
            path.to_str().unwrap(),
            "--workers",
            "1",
            "--responses",
            "32",
            "--stats",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(out.lines().count(), 5, "4 responses + stats");
        assert!(out.contains("\"ok\": true") || out.contains("\"ok\":true"));
        // The generous deadline was met: no misses in the stats line.
        assert!(out.contains("\"deadline_misses\": 0") || out.contains("\"deadline_misses\":0"));
    }

    #[test]
    fn submit_deadline_flag_must_be_numeric() {
        let err = run(&args(&[
            "submit",
            "fig9",
            "--count",
            "2",
            "--deadline-ms",
            "soon",
        ]))
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("--deadline-ms") && err.contains("soon"),
            "{err}"
        );
    }

    #[test]
    fn model_flag_without_value_is_a_hard_error() {
        let err = run(&args(&["simulate", "--example", "--model"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing value for --model"), "{err}");
    }

    #[test]
    fn run_rejects_unknown_commands_and_missing_args() {
        assert!(run(&[]).is_err());
        assert!(run(&args(&["info"])).is_err());
        assert!(run(&args(&["frobnicate", "--example"])).is_err());
    }

    #[test]
    fn malformed_numeric_flags_are_hard_errors() {
        // Historically `--budget abc` silently fell back to the default.
        let err = run(&args(&["tree", "--example", "--budget", "abc"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--budget"), "error must name the flag: {err}");
        assert!(err.contains("abc"), "error must show the input: {err}");

        let err = run(&args(&["simulate", "--example", "--cycles", "1e3"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--cycles"));

        // A flag present with no value is also an error.
        let err = run(&args(&["tree", "--example", "--budget"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing value"));

        // Absent flags still use defaults.
        assert!(run(&args(&["tree", "--example"])).is_ok());
    }

    #[test]
    fn format_flag_is_validated() {
        assert!(run(&args(&["info", "--example", "--format", "json"])).is_ok());
        assert!(run(&args(&["info", "--example", "--format", "text"])).is_ok());
        let err = run(&args(&["info", "--example", "--format", "xml"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--format"));
        // A --format typo is reported even when --dot/--json already
        // decide the output.
        let err = run(&args(&["tree", "--example", "--dot", "--format", "jsn"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--format"));
    }

    #[test]
    fn export_prefix_without_value_is_a_hard_error() {
        let err = run(&args(&["export", "--example", "--prefix"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing value for --prefix"), "{err}");
    }

    #[test]
    fn tree_json_via_format_flag_matches_legacy_json_flag() {
        let a = run(&args(&["tree", "--example", "--json"])).unwrap();
        let b = run(&args(&["tree", "--example", "--format", "json"])).unwrap();
        let ra: SynthesisReport = serde_json::from_str(&a).unwrap();
        let rb: SynthesisReport = serde_json::from_str(&b).unwrap();
        assert_eq!(ra.stats, rb.stats);
    }

    #[test]
    fn c_identifier_predicate() {
        assert!(is_c_identifier("_x9"));
        assert!(is_c_identifier("ftqs"));
        assert!(!is_c_identifier(""));
        assert!(!is_c_identifier("9x"));
        assert!(!is_c_identifier("a-b"));
    }
}
