//! Golden-output tests for the CLI's `--format json` reports.
//!
//! The JSON shapes are an interface: batch pipelines and embedded-runtime
//! tooling parse them, so field order (serde declaration order) and value
//! layout must stay stable. Each golden file under `tests/golden/` is the
//! exact expected output on the paper's Fig. 1 example with fixed seeds;
//! the only nondeterministic field — `timing.synthesis_micros` — is
//! normalized to 0 on both sides before comparison.
//!
//! To regenerate after an *intentional* schema change:
//!
//! ```text
//! cargo run -p ftqs-cli --bin ftqs -- tree --example --budget 4 --format json
//! cargo run -p ftqs-cli --bin ftqs -- compare --example --scenarios 50 --budget 4 --seed 3 --format json
//! cargo run -p ftqs-cli --bin ftqs -- info --example --format json
//! ```
//!
//! (normalize `synthesis_micros` to 0 by hand) — and read the diff; every
//! changed line is a consumer-visible schema change.

use ftqs_cli::{compare, info, run, tree, OutputFormat, TreeFormat};

/// Zeroes the value of every `"synthesis_micros": N` occurrence — the one
/// wall-clock field in a report.
fn normalize_timing(json: &str) -> String {
    let needle = "\"synthesis_micros\": ";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(at) = rest.find(needle) {
        let value_start = at + needle.len();
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn assert_matches_golden(actual: &str, golden: &str, name: &str) {
    let actual = normalize_timing(actual);
    let golden = normalize_timing(golden);
    if actual != golden {
        // Locate the first diverging line for a readable failure.
        for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                a,
                g,
                "golden mismatch in {name} at line {} — schema drift is a \
                 consumer-visible break; regenerate deliberately (see module docs)",
                i + 1
            );
        }
        assert_eq!(
            actual.lines().count(),
            golden.lines().count(),
            "golden mismatch in {name}: line counts differ"
        );
        panic!("golden mismatch in {name}");
    }
}

#[test]
fn tree_json_matches_golden() {
    let actual = tree("--example", 4, TreeFormat::Json).unwrap();
    assert_matches_golden(
        &actual,
        include_str!("golden/tree_fig1_budget4.json"),
        "tree --example --budget 4 --format json",
    );
}

#[test]
fn tree_json_exposes_checkpoint_counters() {
    // The expansion stats are part of the public report schema: batch
    // pipelines A/B the incremental expansion by reading these counters.
    let actual = tree("--example", 4, TreeFormat::Json).unwrap();
    for field in [
        "\"expansion\"",
        "\"snapshots\"",
        "\"restores\"",
        "\"prefix_steps_saved\"",
        "\"prefix_steps_rerun\"",
        "\"steps_replayed\"",
        "\"steps_searched\"",
        "\"estimates_certified\"",
        "\"estimates_semi_replayed\"",
        "\"estimates_recomputed\"",
    ] {
        assert!(
            actual.contains(field),
            "tree --format json lost the {field} checkpoint counter"
        );
    }
}

#[test]
fn compare_json_matches_golden() {
    let actual = compare("--example", 50, 4, 3, OutputFormat::Json).unwrap();
    assert_matches_golden(
        &actual,
        include_str!("golden/compare_fig1_s50_b4_seed3.json"),
        "compare --example --scenarios 50 --budget 4 --seed 3 --format json",
    );
}

#[test]
fn info_json_matches_golden() {
    let actual = info("--example", OutputFormat::Json).unwrap();
    assert_matches_golden(
        &actual,
        include_str!("golden/info_fig1.json"),
        "info --example --format json",
    );
}

#[test]
fn goldens_hold_through_the_argv_dispatcher() {
    // The same bytes must come out of the full `ftqs tree ... --json` path.
    let args: Vec<String> = ["tree", "--example", "--budget", "4", "--json"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let actual = run(&args).unwrap();
    assert_matches_golden(
        &actual,
        include_str!("golden/tree_fig1_budget4.json"),
        "argv tree --json",
    );
}

#[test]
fn normalize_timing_only_touches_the_timing_field() {
    let s = "{\n  \"synthesis_micros\": 123456,\n  \"other\": 123\n}";
    assert_eq!(
        normalize_timing(s),
        "{\n  \"synthesis_micros\": 0,\n  \"other\": 123\n}"
    );
}
