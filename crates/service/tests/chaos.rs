//! Service-level fault injection: the degraded-operation contract.
//!
//! Under sustained injected faults — jobs that panic, worker threads
//! that die outright, jobs that stall — the fleet must keep every
//! promise it makes in calm weather: exactly one response per accepted
//! request (no loss, no duplication), bounded queue and response
//! buffers, and a pool that ends the run fully staffed because the
//! supervisor respawned every casualty. Chaos decisions are pure
//! functions of `(policy seed, request id)` (see
//! [`ftqs_service::ChaosPolicy`]), so every scenario here is
//! reproducible regardless of worker count or thread scheduling.

use ftqs_core::SynthesisRequest;
use ftqs_service::{ChaosPolicy, JobSource, Service, ServiceConfig, ServiceError, ServiceRequest};
use std::collections::BTreeSet;
use std::sync::Once;

/// Chaos kills unwind worker threads on purpose; without this filter
/// every injected panic spews a backtrace header into the test output.
/// Non-chaos panics (i.e. real bugs) still reach the default hook.
fn quiet_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            if message.as_deref().is_some_and(|m| m.starts_with("chaos:")) {
                return;
            }
            default(info);
        }));
    });
}

fn cheap(id: u64) -> ServiceRequest {
    // Seeds 4 and 5 generate schedulable size-12 applications, so in a
    // calm run every request succeeds — any failure below is injected.
    ServiceRequest::new(
        id,
        JobSource::Preset {
            family: "fig9".to_string(),
            size: 12,
            seed: 4 + id % 2,
        },
        SynthesisRequest::ftss(),
    )
}

fn chaotic_service(chaos: ChaosPolicy, workers: usize) -> Service {
    Service::start(ServiceConfig {
        workers,
        queue_capacity: 64,
        cache_capacity: 16,
        response_capacity: 64,
        chaos: Some(chaos),
        ..ServiceConfig::default()
    })
}

#[test]
fn exactly_one_response_per_request_under_sustained_chaos() {
    quiet_chaos_panics();
    let policy = ChaosPolicy {
        seed: 0x00C0_FFEE,
        panic_per_mille: 80,
        kill_per_mille: 40,
        slow_per_mille: 60,
        slow_micros: 200,
    };
    let count = 1000u64;
    let mut service = chaotic_service(policy, 4);
    let responses = service.run_batch((0..count).map(cheap).collect());

    assert_eq!(responses.len() as u64, count, "one response per request");
    let mut seen = vec![false; count as usize];
    for response in &responses {
        assert!(
            !std::mem::replace(&mut seen[response.id as usize], true),
            "duplicate response for id {}",
            response.id
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, count);
    assert_eq!(stats.completed, count);
    assert!(stats.panics > 0, "the policy must actually inject faults");
    assert!(stats.respawns > 0, "kills must actually fell workers");
    assert!(
        stats.queue_peak_depth <= stats.queue_capacity,
        "work queue stayed bounded"
    );
    assert!(
        stats.response_peak_depth <= stats.response_capacity,
        "response ring stayed bounded"
    );
    // Every injected failure was answered as WorkerPanic; everything
    // else succeeded — chaos degrades responses, it never loses them.
    let failed = responses.iter().filter(|r| r.outcome.is_err()).count();
    assert_eq!(failed as u64, stats.failed);
    assert!(responses
        .iter()
        .filter(|r| r.outcome.is_err())
        .all(|r| matches!(r.outcome, Err(ServiceError::WorkerPanic(_)))));
}

#[test]
fn injected_failures_are_deterministic_in_the_request_id() {
    quiet_chaos_panics();
    let policy = ChaosPolicy {
        seed: 0xDECA_FBAD,
        panic_per_mille: 100,
        kill_per_mille: 50,
        slow_per_mille: 0,
        slow_micros: 0,
    };
    let count = 200u64;
    // The ids the policy itself promises to fail…
    let promised: BTreeSet<u64> = (0..count)
        .filter(|&id| {
            let d = policy.decide(id);
            d.panic || d.kill
        })
        .collect();
    assert!(!promised.is_empty(), "policy must promise some failures");
    // …must be exactly the ids that fail, run after run, regardless of
    // worker count or scheduling.
    for workers in [1, 3] {
        let mut service = chaotic_service(policy, workers);
        let responses = service.run_batch((0..count).map(cheap).collect());
        let failed: BTreeSet<u64> = responses
            .iter()
            .filter(|r| r.outcome.is_err())
            .map(|r| r.id)
            .collect();
        assert_eq!(
            failed, promised,
            "chaos outcomes must be a pure function of (seed, id)"
        );
        let _ = service.shutdown();
    }
}

#[test]
fn caught_panic_attaches_its_message_and_spares_the_worker() {
    quiet_chaos_panics();
    let policy = ChaosPolicy {
        seed: 1,
        panic_per_mille: 1000, // every job panics inside the isolation
        kill_per_mille: 0,
        slow_per_mille: 0,
        slow_micros: 0,
    };
    let mut service = chaotic_service(policy, 1);
    let responses = service.run_batch(vec![cheap(7), cheap(8)]);
    for (response, id) in responses.iter().zip([7u64, 8]) {
        match &response.outcome {
            Err(ServiceError::WorkerPanic(message)) => assert_eq!(
                message,
                &format!("chaos: injected panic on request {id}"),
                "the panic payload message is captured verbatim"
            ),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.panics, 2);
    assert_eq!(
        stats.respawns, 0,
        "caught panics never cost a worker thread"
    );
}

#[test]
fn supervisor_respawns_through_every_kill() {
    quiet_chaos_panics();
    let policy = ChaosPolicy {
        seed: 2,
        panic_per_mille: 0,
        kill_per_mille: 1000, // every job fells its worker thread
        slow_per_mille: 0,
        slow_micros: 0,
    };
    let count = 20u64;
    // One worker: without respawning, the first kill would strand the
    // remaining 19 requests forever.
    let mut service = chaotic_service(policy, 1);
    let responses = service.run_batch((0..count).map(cheap).collect());
    assert_eq!(responses.len() as u64, count);
    for response in &responses {
        assert!(
            matches!(&response.outcome, Err(ServiceError::WorkerPanic(m))
                if m.contains("worker thread died")),
            "a killed worker's in-flight request is answered by its guard"
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.panics, count);
    // One respawn per kill — except possibly the very last: its exit
    // event may reach the supervisor after shutdown already closed the
    // intake, in which case the worker correctly retires instead.
    assert!(
        stats.respawns >= count - 1,
        "every mid-run kill must be respawned (saw {})",
        stats.respawns
    );
    assert_eq!(stats.completed, count);
}
