//! Cache-correctness and robustness tests for the fleet service.
//!
//! The load-bearing properties: a response served from the artifact cache
//! is *bit-identical* to a cold synthesis of the same request — same
//! quasi-static tree (pinned through [`ftqs_core::tree_digest`]) and the
//! same expected utility down to the last mantissa bit — and the service
//! degrades gracefully (priorities, deadlines, backpressure, shutdown
//! races) instead of hanging or panicking. Fault-injection coverage
//! (worker panics, kills, supervision) lives in `tests/chaos.rs`.

use ftqs_core::{tree_digest, ContentDigest, Engine, SynthesisReport, SynthesisRequest};
use ftqs_service::transport::{self, WireResponse};
use ftqs_service::{
    JobSource, Priority, Service, ServiceConfig, ServiceError, ServiceRequest, SubmitError,
};
use ftqs_workloads::family::{build, Family};
use std::sync::Arc;
use std::time::Duration;

fn single_worker_service(cache_capacity: usize) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        cache_capacity,
        ..ServiceConfig::default()
    })
}

fn preset(id: u64, seed: u64, request: SynthesisRequest) -> ServiceRequest {
    ServiceRequest::new(
        id,
        JobSource::Preset {
            family: "fig9".to_string(),
            size: 15,
            seed,
        },
        request,
    )
}

/// A deliberately heavy request that occupies a worker for many
/// milliseconds (used to hold the queue busy while others pile up).
fn heavy(id: u64) -> ServiceRequest {
    ServiceRequest::new(
        id,
        JobSource::Preset {
            family: "fig9".to_string(),
            size: 30,
            seed: 12,
        },
        SynthesisRequest::ftqs(24),
    )
}

/// Spin until the single worker has taken the queued request in flight
/// (queue empty), so subsequently queued requests demonstrably wait
/// behind it rather than racing it to the worker.
fn occupy(service: &Service) {
    while service.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
}

fn fingerprint(report: &SynthesisReport) -> (ContentDigest, u64, usize) {
    (
        tree_digest(&report.tree),
        report.utility.expected_average_case.to_bits(),
        report.dropped.count,
    )
}

#[test]
fn cache_hit_is_bit_identical_to_cold_for_every_policy() {
    // One worker makes completion order (and therefore which request is
    // the cold one) deterministic.
    let mut service = single_worker_service(16);
    let requests = [
        SynthesisRequest::ftss(),
        SynthesisRequest::ftqs(6),
        SynthesisRequest::ftsf(),
    ];
    for (i, request) in requests.iter().enumerate() {
        let id = i as u64 * 2;
        let responses = service.run_batch(vec![
            preset(id, 9, request.clone()),
            preset(id + 1, 9, request.clone()),
        ]);
        assert_eq!(responses.len(), 2);
        let cold = &responses[0];
        let hit = &responses[1];
        assert_eq!(cold.id, id);
        assert!(!cold.cache_hit, "first request of a key must be cold");
        assert!(hit.cache_hit, "identical second request must hit");
        let cold_report = cold.outcome.as_ref().expect("cold synthesis succeeds");
        let hit_report = hit.outcome.as_ref().expect("cached synthesis succeeds");
        assert_eq!(
            fingerprint(cold_report),
            fingerprint(hit_report),
            "cached synthesis must be bit-identical to cold ({request:?})"
        );

        // And both must match a plain single-shot Session outside the
        // service entirely.
        let app = build(Family::Fig9, 15, 9);
        let direct = Engine::new()
            .session()
            .synthesize(&app, request)
            .expect("direct synthesis succeeds");
        assert_eq!(fingerprint(cold_report), fingerprint(&direct));
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.cache.hits, 3);
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn eviction_then_reinsert_stays_bit_identical() {
    // Capacity 1: seed 1 and seed 2 fight over the single slot, so seed 1
    // is rebuilt from scratch after being evicted. The rebuilt artifact
    // must produce the same bits as the original.
    let mut service = single_worker_service(1);
    let request = SynthesisRequest::ftqs(6);
    let responses = service.run_batch(vec![
        preset(0, 1, request.clone()), // miss: builds seed 1
        preset(1, 2, request.clone()), // miss: evicts seed 1
        preset(2, 1, request.clone()), // miss: rebuilds seed 1
        preset(3, 1, request.clone()), // hit: cached rebuild
    ]);
    assert_eq!(responses.len(), 4);
    assert_eq!(
        responses.iter().map(|r| r.cache_hit).collect::<Vec<_>>(),
        [false, false, false, true]
    );
    let first = fingerprint(responses[0].outcome.as_ref().unwrap());
    let rebuilt = fingerprint(responses[2].outcome.as_ref().unwrap());
    let rehit = fingerprint(responses[3].outcome.as_ref().unwrap());
    assert_eq!(first, rebuilt, "evict + rebuild must reproduce the bits");
    assert_eq!(first, rehit, "cached rebuild must reproduce the bits");
    let stats = service.shutdown();
    assert!(stats.cache.evictions >= 2, "capacity-1 thrash must evict");
    assert_eq!(stats.cache.entries, 1);
}

#[test]
fn spec_and_app_sources_share_results_with_presets() {
    let app = build(Family::Fig9, 12, 4);
    let spec_text = ftqs_workloads::spec::render(&app);
    let request = SynthesisRequest::ftqs(4);
    let mut service = single_worker_service(8);
    let responses = service.run_batch(vec![
        ServiceRequest::new(0, JobSource::App(Arc::new(app)), request.clone()),
        ServiceRequest::new(1, JobSource::Spec(spec_text), request.clone()),
    ]);
    let a = fingerprint(responses[0].outcome.as_ref().unwrap());
    let b = fingerprint(responses[1].outcome.as_ref().unwrap());
    assert_eq!(a, b, "same application through any source, same bits");
    let _ = service.shutdown();
}

#[test]
fn invalid_sources_fail_per_request_without_poisoning_the_batch() {
    let mut service = single_worker_service(8);
    let responses = service.run_batch(vec![
        preset(0, 5, SynthesisRequest::ftss()),
        ServiceRequest::new(
            1,
            JobSource::Preset {
                family: "no-such-family".to_string(),
                size: 10,
                seed: 0,
            },
            SynthesisRequest::ftss(),
        ),
        ServiceRequest::new(
            2,
            JobSource::Spec("this is not a spec".to_string()),
            SynthesisRequest::ftss(),
        ),
        preset(3, 5, SynthesisRequest::ftss()),
    ]);
    assert_eq!(responses.len(), 4);
    let by_id = |id: u64| responses.iter().find(|r| r.id == id).unwrap();
    assert!(by_id(0).outcome.is_ok());
    assert!(
        by_id(1).outcome.is_err(),
        "unknown family is a per-request error"
    );
    assert!(by_id(2).outcome.is_err(), "bad spec is a per-request error");
    assert!(by_id(3).outcome.is_ok(), "later requests still served");
    let stats = service.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 2);
}

#[test]
fn overload_surfaces_as_backpressure_not_a_panic() {
    // A single worker chewing on a deliberately heavy request keeps the
    // depth-1 queue occupied long enough for a third submission to bounce.
    let mut service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 4,
        ..ServiceConfig::default()
    });
    let mut accepted = 0u64;
    let mut bounced = 0u64;
    for _ in 0..50 {
        match service.try_submit(heavy(0)) {
            Ok(()) => accepted += 1,
            Err(SubmitError::Backpressure { capacity }) => {
                assert_eq!(capacity, 1);
                bounced += 1;
            }
            Err(SubmitError::Stopped) => panic!("service is running"),
        }
    }
    assert!(bounced > 0, "a depth-1 queue must bounce a 50-burst");
    for _ in 0..accepted {
        let response = service.recv().expect("accepted requests are answered");
        assert!(response.outcome.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(
        stats.rejected, bounced,
        "every backpressure bounce is counted"
    );
    assert!(stats.queue_peak_depth <= 1);
}

#[test]
fn interactive_requests_overtake_queued_bulk_requests() {
    // The single worker is pinned on a heavy request while the queue
    // fills: three bulk requests, then one interactive. The interactive
    // request must be served before any of the queued bulk ones.
    let mut service = single_worker_service(8);
    service.submit(heavy(0)).unwrap();
    occupy(&service); // the worker now holds request 0 in flight
    for id in 1..=3 {
        service
            .submit(preset(id, 7, SynthesisRequest::ftss()))
            .unwrap();
    }
    service
        .submit(preset(10, 7, SynthesisRequest::ftss()).with_priority(Priority::Interactive))
        .unwrap();
    let order: Vec<u64> = (0..5).map(|_| service.recv().unwrap().id).collect();
    assert_eq!(order[0], 0, "the in-flight request finishes first");
    assert_eq!(order[1], 10, "interactive overtakes every queued bulk");
    assert_eq!(&order[2..], [1, 2, 3], "bulk retains FIFO order");
    let _ = service.shutdown();
}

#[test]
fn expired_deadline_is_answered_without_synthesis() {
    // The worker is busy for many milliseconds; requests with a zero
    // deadline expire in the queue and must come back as
    // DeadlineExceeded with no service time spent.
    let mut service = single_worker_service(8);
    service.submit(heavy(0)).unwrap();
    occupy(&service);
    for id in 1..=3 {
        service
            .submit(preset(id, 7, SynthesisRequest::ftss()).with_deadline(Duration::ZERO))
            .unwrap();
    }
    let responses: Vec<_> = (0..4).map(|_| service.recv().unwrap()).collect();
    assert!(responses[0].outcome.is_ok());
    for response in &responses[1..] {
        assert!(
            matches!(response.outcome, Err(ServiceError::DeadlineExceeded { .. })),
            "expired request must not be synthesized: {:?}",
            response.outcome
        );
        assert_eq!(response.service_micros, 0, "no worker time burned");
        assert!(response.deadline_missed);
    }
    let stats = service.shutdown();
    assert_eq!(stats.deadline_misses, 3);
    assert_eq!(stats.completed, 4, "expired requests still answer");
    // A generous deadline, by contrast, is met and not counted.
    let mut service = single_worker_service(8);
    let responses = service.run_batch(vec![
        preset(0, 9, SynthesisRequest::ftss()).with_deadline(Duration::from_secs(60))
    ]);
    assert!(responses[0].outcome.is_ok());
    assert!(!responses[0].deadline_missed);
    assert_eq!(service.shutdown().deadline_misses, 0);
}

#[test]
fn blocked_submitters_return_stopped_when_the_service_closes() {
    // Producers parked in blocking submit() on a full queue when close()
    // runs must observe SubmitError::Stopped — never hang, never panic.
    // A depth-1 response ring that nobody consumes wedges the pipeline
    // deliberately: the worker blocks delivering its second response, the
    // depth-1 work queue stays full, and the parked submitters have no
    // way forward until the close releases everything.
    let service = Arc::new(Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 4,
        response_capacity: 1,
        ..ServiceConfig::default()
    }));
    let cheap = |id: u64| preset(id, 3, SynthesisRequest::ftss());
    service.submit(cheap(0)).unwrap();
    // Fill the single queue slot (retrying while the worker takes job 0).
    while service.try_submit(cheap(1)).is_err() {
        std::thread::yield_now();
    }
    let blocked: Vec<_> = (0..4)
        .map(|i| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.submit(cheap(10 + i)))
        })
        .collect();
    // Give the submitters time to park on the full queue, then close the
    // intake out from under them.
    std::thread::sleep(Duration::from_millis(50));
    service.close();
    let mut stopped = 0;
    let mut accepted_late = 0;
    for handle in blocked {
        // The join itself is the hang check.
        match handle.join().expect("submitter threads must not panic") {
            Err(SubmitError::Stopped) => stopped += 1,
            Ok(()) => accepted_late += 1,
            Err(SubmitError::Backpressure { .. }) => {
                panic!("blocking submit never reports backpressure")
            }
        }
    }
    // At most one submitter can have slipped into the slot freed when
    // the worker popped job 1 (it then blocked on the response ring, so
    // the slot never freed again); the rest must have been released by
    // the close.
    assert_eq!(stopped + accepted_late, 4);
    assert!(stopped >= 3, "close must release parked submitters");
    // Everything accepted before the close is still served and
    // receivable afterwards, then the stream ends.
    for _ in 0..(2 + accepted_late) {
        assert!(service.recv().is_some(), "accepted requests still answer");
    }
    assert!(service.recv().is_none());
}

#[test]
fn responses_remain_receivable_after_shutdown() {
    let mut service = single_worker_service(8);
    for id in 0..3 {
        service
            .submit(preset(id, 11, SynthesisRequest::ftss()))
            .unwrap();
    }
    // Shut down with every response still undelivered: the queue drains,
    // workers exit, and the buffered responses must survive.
    let stats = service.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.response_depth, 3, "responses buffered, not lost");
    let mut ids: Vec<u64> = (0..3).map(|_| service.recv().unwrap().id).collect();
    ids.sort_unstable();
    assert_eq!(ids, [0, 1, 2]);
    assert!(
        service.recv().is_none(),
        "after the drain the stream reports its end"
    );
}

#[test]
fn bounded_response_ring_throttles_workers_and_loses_nothing() {
    // Ring capacity 2 with a deliberately slow consumer: workers must
    // block on the full ring (peak depth ≤ 2 while live), yet every
    // request is answered exactly once.
    let mut service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 8,
        response_capacity: 2,
        ..ServiceConfig::default()
    });
    let count = 12u64;
    for id in 0..count {
        service
            .submit(preset(id, id % 3, SynthesisRequest::ftss()))
            .unwrap();
    }
    let mut seen = vec![false; count as usize];
    for _ in 0..count {
        std::thread::sleep(Duration::from_millis(2)); // slow consumer
        let response = service.recv().expect("every request answers");
        assert!(
            !std::mem::replace(&mut seen[response.id as usize], true),
            "duplicate response id {}",
            response.id
        );
    }
    assert!(seen.iter().all(|&s| s), "no response lost");
    let stats = service.shutdown();
    assert!(
        stats.response_peak_depth <= 2,
        "bounded ring must throttle, peak {}",
        stats.response_peak_depth
    );
    assert_eq!(stats.completed, count);
}

#[test]
fn malformed_ndjson_lines_answer_in_place_and_spare_the_batch() {
    let mut service = single_worker_service(8);
    let input = concat!(
        "{\"id\": 1, \"preset\": {\"family\": \"fig9\", \"size\": 12, \"seed\": 5}}\n",
        "this is not json at all\n",
        "{\"id\": 7, \"preset\": {\"family\": \"fig9\"}}\n",
        "{\"preset\": {\"family\": \"fig9\", \"size\": 12, \"seed\": 5}}\n",
        "{\"id\": 3, \"preset\": {\"family\": \"marsaglia\", \"size\": 12, \"seed\": 5}}\n",
        "\n",
        "{\"id\": 2, \"preset\": {\"family\": \"fig9\", \"size\": 12, \"seed\": 5}, \"policy\": \"ftss\"}\n",
    );
    let mut output = Vec::new();
    let summary = transport::serve(&service, input.as_bytes(), &mut output).unwrap();
    assert_eq!(summary.accepted, 3, "ids 1, 3, 2 reach the service");
    assert_eq!(summary.malformed, 3, "bad JSON, missing size, missing id");

    let lines: Vec<WireResponse> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 6, "every line answers exactly once");

    let by_id = |id: u64| lines.iter().find(|r| r.id == id).unwrap();
    assert!(by_id(1).ok && by_id(1).report.is_some());
    assert!(by_id(2).ok, "requests after malformed lines still run");
    assert!(!by_id(3).ok, "unknown family fails per-request");
    assert!(by_id(3).error.as_ref().unwrap().contains("marsaglia"));
    assert!(
        !by_id(7).ok && by_id(7).error.is_some(),
        "missing 'size' reports against the extracted id"
    );
    // Lines with no extractable id (the non-JSON line 2 and the id-less
    // line 4) report id 0 and name their line number instead.
    let anonymous: Vec<&str> = lines
        .iter()
        .filter(|r| r.id == 0)
        .map(|r| r.error.as_deref().unwrap())
        .collect();
    assert_eq!(anonymous.len(), 2);
    assert!(anonymous.iter().any(|e| e.contains("line 2")));
    assert!(anonymous.iter().any(|e| e.contains("line 4")));
    let _ = service.shutdown();
}

#[test]
fn transport_parses_priority_and_deadline_fields() {
    let line = "{\"id\": 5, \"preset\": {\"family\": \"fig9\", \"size\": 10}, \
                \"priority\": \"interactive\", \"deadline_ms\": 250}";
    let request = transport::parse_request(line).expect("valid request");
    assert_eq!(request.priority, Priority::Interactive);
    assert_eq!(request.deadline, Some(Duration::from_millis(250)));

    let defaulted =
        transport::parse_request("{\"id\": 5, \"preset\": {\"family\": \"fig9\", \"size\": 10}}")
            .unwrap();
    assert_eq!(defaulted.priority, Priority::Bulk);
    assert_eq!(defaulted.deadline, None);

    let (_, err) = transport::parse_request(
        "{\"id\": 5, \"preset\": {\"family\": \"fig9\", \"size\": 10}, \"priority\": \"vip\"}",
    )
    .unwrap_err();
    assert!(err.contains("unknown priority"), "{err}");
}

#[test]
fn round_trip_of_generated_request_lines() {
    let line = transport::preset_request_line(
        42,
        "polar",
        14,
        7,
        "ftqs",
        6,
        Some("interactive"),
        Some(125),
    );
    let request = transport::parse_request(&line).expect("generated lines parse");
    assert_eq!(request.id, 42);
    match &request.source {
        JobSource::Preset { family, size, seed } => {
            assert_eq!(family, "polar");
            assert_eq!(*size, 14);
            assert_eq!(*seed, 7);
        }
        other => panic!("expected preset source, got {other:?}"),
    }
    assert_eq!(request.request, SynthesisRequest::ftqs(6));
    assert_eq!(request.priority, Priority::Interactive);
    assert_eq!(request.deadline, Some(Duration::from_millis(125)));

    // Omitted knobs stay off the wire and default on parse.
    let bare = transport::preset_request_line(1, "fig9", 10, 0, "ftss", 8, None, None);
    assert!(!bare.contains("priority") && !bare.contains("deadline_ms"));
    let parsed = transport::parse_request(&bare).unwrap();
    assert_eq!(parsed.priority, Priority::Bulk);
    assert_eq!(parsed.deadline, None);
}

#[test]
fn duplicate_heavy_stream_reports_a_high_hit_rate() {
    // 24 requests over 4 distinct applications: at most 4 misses once the
    // cache is warm, so the hit rate is at least 20/24.
    let mut service = single_worker_service(8);
    let requests = (0..24)
        .map(|i| preset(i, i % 4, SynthesisRequest::ftqs(4)))
        .collect();
    let responses = service.run_batch(requests);
    assert_eq!(responses.len(), 24);
    let stats = service.shutdown();
    assert_eq!(stats.cache.hits + stats.cache.misses, 24);
    assert_eq!(stats.cache.misses, 4);
    assert!(stats.cache.hit_rate() > 0.8);
}
