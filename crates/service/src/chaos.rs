//! Deterministic service-level fault injection (test/bench harness).
//!
//! The paper's discipline — prove graceful degradation by *driving the
//! system past its design contract* — applied to the serving layer
//! itself. A [`ChaosPolicy`] plugged into
//! [`ServiceConfig`](crate::ServiceConfig) makes workers misbehave in the
//! three ways a real fleet does:
//!
//! * **injected panics** — the job panics mid-execution; the per-job
//!   `catch_unwind` isolation must answer it with
//!   [`ServiceError::WorkerPanic`](crate::ServiceError::WorkerPanic)
//!   and the worker must keep serving;
//! * **worker kills** — the panic unwinds *outside* the per-job
//!   isolation, so the worker thread actually dies; the supervisor must
//!   answer the in-flight request and respawn the worker;
//! * **slowdowns** — an artificial stall ahead of synthesis, creating
//!   deadline pressure and response-ring backpressure.
//!
//! Decisions are pure functions of `(policy seed, request id)` — a
//! SplitMix64 stream per request — so a chaos run is reproducible
//! regardless of worker count, thread scheduling, or queue order. The
//! degraded-mode sweep in `bench_service` and the `chaos` test suite use
//! this to assert the service's fault-tolerance contract (exactly one
//! response per request, no lost or duplicated ids, bounded buffers)
//! under sustained injection.
//!
//! This module is a test/bench instrument: production configurations
//! leave [`ServiceConfig::chaos`](crate::ServiceConfig::chaos) at `None`,
//! and the worker hot path then never consults it.

use std::time::Duration;

/// Seeded, deterministic fault-injection policy (see the module docs).
/// Rates are per-mille (0–1000) per request; a request rolls each fault
/// class independently, and a kill takes precedence over a plain panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Seed of the per-request decision streams.
    pub seed: u64,
    /// Per-mille probability that a job panics inside the per-job
    /// isolation (answered as `WorkerPanic`, worker survives).
    pub panic_per_mille: u16,
    /// Per-mille probability that the worker thread dies on this job
    /// (answered as `WorkerPanic` by the supervisor guard, worker
    /// respawned).
    pub kill_per_mille: u16,
    /// Per-mille probability of an artificial stall before synthesis.
    pub slow_per_mille: u16,
    /// Stall length for slowed jobs, in microseconds.
    pub slow_micros: u64,
}

impl ChaosPolicy {
    /// A policy that injects nothing (useful as a sweep baseline).
    #[must_use]
    pub fn calm(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            panic_per_mille: 0,
            kill_per_mille: 0,
            slow_per_mille: 0,
            slow_micros: 0,
        }
    }

    /// The fault verdict for one request id. Pure and deterministic:
    /// the same `(seed, id)` always yields the same decision, on any
    /// worker.
    #[must_use]
    pub fn decide(&self, request_id: u64) -> ChaosDecision {
        let mut stream =
            SplitMix64::new(self.seed ^ request_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let kill = stream.roll_per_mille(self.kill_per_mille);
        let panic = !kill && stream.roll_per_mille(self.panic_per_mille);
        let slow = stream.roll_per_mille(self.slow_per_mille);
        ChaosDecision {
            panic,
            kill,
            slow: if slow {
                Some(Duration::from_micros(self.slow_micros))
            } else {
                None
            },
        }
    }
}

/// What [`ChaosPolicy::decide`] sentenced one request to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosDecision {
    /// Panic inside the per-job isolation.
    pub panic: bool,
    /// Kill the worker thread (panic outside the isolation).
    pub kill: bool,
    /// Stall this long before synthesis.
    pub slow: Option<Duration>,
}

/// SplitMix64 — the standard 64-bit mixing stream; tiny, seedable, and
/// good enough for independent per-request fault rolls.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn roll_per_mille(&mut self, threshold: u16) -> bool {
        self.next() % 1000 < u64::from(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_request_id() {
        let policy = ChaosPolicy {
            seed: 42,
            panic_per_mille: 100,
            kill_per_mille: 50,
            slow_per_mille: 200,
            slow_micros: 500,
        };
        for id in 0..2000 {
            assert_eq!(policy.decide(id), policy.decide(id));
        }
    }

    #[test]
    fn rates_are_roughly_respected_and_kill_excludes_panic() {
        let policy = ChaosPolicy {
            seed: 7,
            panic_per_mille: 100,
            kill_per_mille: 100,
            slow_per_mille: 100,
            slow_micros: 1,
        };
        let mut panics = 0u32;
        let mut kills = 0u32;
        let mut slows = 0u32;
        for id in 0..10_000 {
            let d = policy.decide(id);
            assert!(!(d.panic && d.kill), "kill takes precedence over panic");
            panics += u32::from(d.panic);
            kills += u32::from(d.kill);
            slows += u32::from(d.slow.is_some());
        }
        // 10% nominal each over 10k draws; allow wide slack.
        for count in [panics, kills, slows] {
            assert!((600..1500).contains(&count), "rate off: {count}/10000");
        }
    }

    #[test]
    fn calm_policy_injects_nothing() {
        let policy = ChaosPolicy::calm(3);
        for id in 0..1000 {
            assert_eq!(policy.decide(id), ChaosDecision::default());
        }
    }

    #[test]
    fn different_seeds_give_different_fault_sets() {
        let a = ChaosPolicy {
            seed: 1,
            panic_per_mille: 500,
            kill_per_mille: 0,
            slow_per_mille: 0,
            slow_micros: 0,
        };
        let b = ChaosPolicy { seed: 2, ..a };
        let hits = |p: &ChaosPolicy| {
            (0..256)
                .filter(|&id| p.decide(id).panic)
                .collect::<Vec<_>>()
        };
        assert_ne!(hits(&a), hits(&b));
    }
}
