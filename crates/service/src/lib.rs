//! # ftqs-service — the long-lived synthesis fleet service
//!
//! Everything below `crates/cli` synthesizes one application per process
//! invocation. A synthesis *fleet* — sweeping thousands of generated
//! applications, or serving synthesis requests for a family of related
//! configurations — pays the fixed costs over and over: application
//! generation or spec parsing, and the per-application model derivation
//! ([`AppModel`](ftqs_core::ftss) tables, compiled utilities) that every
//! run needs before the actual scheduling starts. This crate is the
//! long-lived server shape for that workload, std-only (no async
//! runtime — synthesis is CPU-bound, so threads *are* the right
//! concurrency primitive offline), built to the same fault-tolerance
//! contract the paper demands of the scheduled platform: faults beyond
//! the design assumptions degrade service, they never collapse it.
//!
//! ```text
//!  submit / NDJSON lines
//!        │  (rejected submissions are counted, never silently dropped)
//!        ▼
//!  bounded two-lane work queue ────► worker threads (one Session each,
//!   (interactive overtakes bulk,  │   per-job catch_unwind isolation)
//!    expired deadlines answered   │        │           ▲
//!    without synthesis,           │        │           │ respawn on
//!    poison-immune locks)         │        │           │ thread death
//!                                 │        │      supervisor thread
//!                                 │        ▼
//!                                 │  artifact cache ── ContentDigest key:
//!                                 │  (LRU, Arc-shared) app ⊕ engine ⊕ knobs
//!                                 │        │
//!                                 ▼        ▼
//!                     bounded response ring (completion order;
//!                      a slow consumer throttles the workers)
//! ```
//!
//! * The **work queue** is bounded and priority-aware:
//!   [`Service::try_submit`] surfaces overload as an explicit
//!   [`SubmitError::Backpressure`] error (counted in
//!   [`ServiceStats::rejected`]) the caller can retry, shed, or block on
//!   ([`Service::submit`]); [`Priority::Interactive`] requests overtake
//!   [`Priority::Bulk`] sweeps; a request whose
//!   [deadline](ServiceRequest::with_deadline) expired while queued is
//!   answered immediately with [`ServiceError::DeadlineExceeded`] —
//!   no worker time is spent synthesizing an answer nobody can use.
//! * **Workers** are plain threads, one per core by default, each owning
//!   a [`ftqs_core::Session`] whose scratch allocations amortize across
//!   every request the worker serves. Each job executes under
//!   `catch_unwind`: a panicking job is answered with
//!   [`ServiceError::WorkerPanic`] (payload message attached) and the
//!   worker keeps serving on a fresh session. If a thread nevertheless
//!   dies (a panic outside the per-job isolation), its supervisor
//!   guard still answers the in-flight request and the supervisor thread
//!   respawns the worker — [`ServiceStats::panics`] and
//!   [`ServiceStats::respawns`] count both events, and the queue's locks
//!   recover from poisoning so one bad job can never wedge the fleet.
//! * The **artifact cache** ([`cache`]) shares [`PreparedApp`]s — the
//!   owned model tables and compiled utilities behind an [`Arc`] —
//!   across workers, keyed by a canonical [`ContentDigest`] of the job
//!   source combined with [`Engine::config_digest`] and
//!   [`SynthesisRequest::knob_digest`]. A hit skips application
//!   generation/parsing *and* model derivation; the synthesis itself
//!   always runs, so a cached response is bit-identical to a cold one
//!   (the cache-correctness tests pin this through
//!   [`ftqs_core::tree_digest`]).
//! * **Responses** stream in completion order through a *bounded* ring,
//!   tagged with the request id and per-request queueing/service
//!   timings: when the consumer falls behind, workers block on the full
//!   ring instead of growing an unbounded buffer, so end-to-end memory
//!   is `queue_capacity + workers + response_capacity` responses at
//!   most. Shutdown lifts the ring's bound (the backlog is provably
//!   bounded by then) so draining workers never deadlock against the
//!   joining thread, and undelivered responses stay receivable after
//!   [`Service::shutdown`].
//! * The **chaos harness** ([`chaos`]) injects worker panics, thread
//!   kills, and slowdowns deterministically from a seed — the test and
//!   bench instrument that pins the whole contract above (exactly one
//!   response per request, bounded buffers, fleet survives sustained
//!   faults).
//!
//! The NDJSON transport ([`transport`]) wires the same service to files
//! and pipes for `ftqs serve` / `ftqs submit`; malformed request lines
//! produce per-request error responses instead of aborting the batch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
mod queue;
mod supervisor;
pub mod transport;

pub use cache::{ArtifactCache, CacheStats};
pub use chaos::{ChaosDecision, ChaosPolicy};

use ftqs_core::digest::Hasher;
use ftqs_core::{
    Application, ContentDigest, Engine, PreparedApp, Session, SynthesisReport, SynthesisRequest,
};
use queue::{Lane, PushError, Queue};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use supervisor::{InFlight, WorkerGuard};

/// Where a job's application comes from. The source is hashed *without*
/// building the application, so a cache hit skips generation/parsing
/// entirely.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// An already-built application (in-process callers). Keyed by
    /// [`ftqs_core::application_digest`] — structurally identical
    /// applications share a cache entry regardless of provenance.
    App(Arc<Application>),
    /// Spec text (see [`ftqs_workloads::spec`]). Keyed by the text
    /// itself: conservative (formatting changes re-key) but free.
    Spec(String),
    /// A deterministic workload-family triple (see
    /// [`ftqs_workloads::family`]). Keyed by the triple.
    Preset {
        /// Canonical family name (see [`ftqs_workloads::Family::name`]).
        family: String,
        /// Requested process count.
        size: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl JobSource {
    /// Canonical content digest of the source (no application build).
    #[must_use]
    pub fn digest(&self) -> ContentDigest {
        let mut h = Hasher::new();
        match self {
            JobSource::App(app) => {
                h.write_u8(0);
                return h.finish().combine(ftqs_core::application_digest(app));
            }
            JobSource::Spec(text) => {
                h.write_u8(1);
                h.write_str(text);
            }
            JobSource::Preset { family, size, seed } => {
                h.write_u8(2);
                h.write_str(family);
                h.write_usize(*size);
                h.write_u64(*seed);
            }
        }
        h.finish()
    }

    /// Builds (or passes through) the application.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSource`] on unparseable specs, unknown
    /// family names, or a zero preset size.
    pub fn resolve(&self) -> Result<Arc<Application>, ServiceError> {
        match self {
            JobSource::App(app) => Ok(Arc::clone(app)),
            JobSource::Spec(text) => ftqs_workloads::spec::parse(text)
                .map(Arc::new)
                .map_err(|e| ServiceError::InvalidSource(e.to_string())),
            JobSource::Preset { family, size, seed } => {
                let f = ftqs_workloads::Family::parse(family).ok_or_else(|| {
                    ServiceError::InvalidSource(format!("unknown workload family '{family}'"))
                })?;
                if *size == 0 {
                    return Err(ServiceError::InvalidSource(
                        "preset size must be positive".to_string(),
                    ));
                }
                Ok(Arc::new(ftqs_workloads::family::build(f, *size, *seed)))
            }
        }
    }
}

/// Scheduling class of a request: interactive requests overtake bulk
/// sweeps at every queue pop (FIFO within a class, per the ROADMAP's
/// fleet-service contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served ahead of any queued bulk request.
    Interactive,
    /// The default: batch sweeps, served in arrival order behind
    /// interactive traffic.
    #[default]
    Bulk,
}

impl Priority {
    fn lane(self) -> Lane {
        match self {
            Priority::Interactive => Lane::Express,
            Priority::Bulk => Lane::Normal,
        }
    }
}

/// One unit of work: an id (echoed on the response), a job source, and
/// the synthesis request to run against it, plus optional service-level
/// scheduling knobs (priority, deadline).
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// Caller-chosen id, echoed verbatim on the response.
    pub id: u64,
    /// Where the application comes from.
    pub source: JobSource,
    /// What to synthesize.
    pub request: SynthesisRequest,
    /// Scheduling class ([`Priority::Bulk`] by default).
    pub priority: Priority,
    /// Time budget measured from submission. A request still queued when
    /// it expires is answered with [`ServiceError::DeadlineExceeded`]
    /// without burning a worker; one that *completes* late still returns
    /// its report but is counted in [`ServiceStats::deadline_misses`]
    /// and flagged on the response.
    pub deadline: Option<Duration>,
}

impl ServiceRequest {
    /// Bundles the three parts of a request (bulk priority, no deadline).
    #[must_use]
    pub fn new(id: u64, source: JobSource, request: SynthesisRequest) -> Self {
        ServiceRequest {
            id,
            source,
            request,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Sets the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline, measured from the moment of submission.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a request failed (carried per-response; other requests in the
/// batch are unaffected).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The job source could not produce an application.
    InvalidSource(String),
    /// Synthesis itself failed (unschedulable, invalid request knobs…).
    Synthesis(ftqs_core::Error),
    /// The job panicked. The worker survived (or was respawned); the
    /// payload message is attached when it was a string.
    WorkerPanic(String),
    /// The request's deadline expired while it waited in the queue; no
    /// synthesis was attempted.
    DeadlineExceeded {
        /// How long the request had waited when the expiry was observed,
        /// in microseconds.
        queued_micros: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidSource(msg) => write!(f, "invalid job source: {msg}"),
            ServiceError::Synthesis(e) => e.fmt(f),
            ServiceError::WorkerPanic(msg) => {
                write!(f, "worker panicked while serving the request: {msg}")
            }
            ServiceError::DeadlineExceeded { queued_micros } => {
                write!(f, "deadline exceeded after {queued_micros} µs in the queue")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One completed (or failed) request, delivered in completion order.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The request's id.
    pub id: u64,
    /// The report, or why there is none.
    pub outcome: Result<SynthesisReport, ServiceError>,
    /// Whether the prepared artifact came from the cache.
    pub cache_hit: bool,
    /// Time spent waiting in the queue, in microseconds.
    pub queued_micros: u64,
    /// Time spent resolving + synthesizing, in microseconds.
    pub service_micros: u64,
    /// Whether the request's deadline (if any) had passed by the time
    /// this response was produced. `true` both for
    /// [`ServiceError::DeadlineExceeded`] answers and for reports that
    /// completed late.
    pub deadline_missed: bool,
}

/// Why a submission was refused. Overload is an error value, never a
/// panic and never silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later, shed the request, or use
    /// the blocking [`Service::submit`]. Counted in
    /// [`ServiceStats::rejected`].
    Backpressure {
        /// The queue's capacity bound.
        capacity: usize,
    },
    /// The service is shutting down.
    Stopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { capacity } => {
                write!(f, "work queue full ({capacity} requests queued)")
            }
            SubmitError::Stopped => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bound of the work queue (requests awaiting a worker).
    pub queue_capacity: usize,
    /// Bound of the artifact cache (prepared applications).
    pub cache_capacity: usize,
    /// Bound of the response ring (completed responses awaiting the
    /// consumer). Workers block on a full ring, so a slow consumer
    /// throttles the fleet instead of growing memory.
    pub response_capacity: usize,
    /// Per-request synthesis parallelism cap applied by the workers.
    /// The default `1` keeps each request on its worker's core — the
    /// fleet saturates cores by running many requests, not by splitting
    /// one. `0` leaves each request's own setting untouched.
    pub intra_parallelism: usize,
    /// The engine configuration every worker session synthesizes with.
    pub engine: Engine,
    /// Deterministic fault injection (test/bench harness only; see
    /// [`chaos`]). `None` — the default — injects nothing and costs
    /// nothing on the worker hot path.
    pub chaos: Option<ChaosPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_capacity: 256,
            response_capacity: 1024,
            intra_parallelism: 1,
            engine: Engine::new(),
            chaos: None,
        }
    }
}

/// Aggregate service counters and gauges, as one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions refused with [`SubmitError::Backpressure`] by
    /// [`Service::try_submit`].
    pub rejected: u64,
    /// Responses produced (success or failure).
    pub completed: u64,
    /// Responses carrying an error outcome.
    pub failed: u64,
    /// Jobs that panicked while executing — whether caught by the
    /// per-job isolation or fatal to the worker thread. Each one was
    /// answered with [`ServiceError::WorkerPanic`].
    pub panics: u64,
    /// Worker threads respawned by the supervisor after dying.
    pub respawns: u64,
    /// Requests whose deadline had passed by response time: expired in
    /// the queue (answered without synthesis) or completed late.
    pub deadline_misses: u64,
    /// Queue depth at snapshot time (gauge).
    pub queue_depth: usize,
    /// Highest queue depth observed at any submission.
    pub queue_peak_depth: usize,
    /// The queue's capacity bound.
    pub queue_capacity: usize,
    /// Response-ring depth at snapshot time (gauge).
    pub response_depth: usize,
    /// Highest response-ring depth observed at any delivery.
    pub response_peak_depth: usize,
    /// The response ring's capacity bound.
    pub response_capacity: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Sum of per-request queue-wait times, in microseconds.
    pub total_queued_micros: u64,
    /// Sum of per-request service times, in microseconds.
    pub total_service_micros: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) deadline_misses: AtomicU64,
    peak_depth: AtomicUsize,
    response_peak_depth: AtomicUsize,
    queued_micros: AtomicU64,
    service_micros: AtomicU64,
}

impl Counters {
    fn note_depth(&self, depth: usize) {
        self.peak_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct Job {
    req: ServiceRequest,
    enqueued: Instant,
    /// Absolute expiry, computed once at submission.
    deadline: Option<Instant>,
}

/// Everything a worker (and its supervisor) needs, shared once.
#[derive(Debug)]
pub(crate) struct WorkerContext {
    pub(crate) queue: Queue<Job>,
    pub(crate) responses: Queue<ServiceResponse>,
    pub(crate) cache: ArtifactCache,
    pub(crate) counters: Counters,
    engine: Engine,
    intra_parallelism: usize,
    chaos: Option<ChaosPolicy>,
}

/// The running fleet service: a bounded two-lane queue, a supervised
/// worker pool, the shared artifact cache, and a bounded response ring.
/// See the crate docs for the architecture.
///
/// Dropping the service closes the queue, drains in-flight work, and
/// joins the workers ([`Service::shutdown`] does the same and returns
/// the final stats; responses still buffered stay receivable after
/// either).
#[derive(Debug)]
pub struct Service {
    ctx: Arc<WorkerContext>,
    supervisor: Option<JoinHandle<()>>,
    workers: usize,
}

impl Service {
    /// Starts the supervisor and its worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let ctx = Arc::new(WorkerContext {
            queue: Queue::new(config.queue_capacity),
            responses: Queue::new(config.response_capacity),
            cache: ArtifactCache::new(config.cache_capacity),
            counters: Counters::default(),
            engine: config.engine,
            intra_parallelism: config.intra_parallelism,
            chaos: config.chaos,
        });
        let supervisor = supervisor::start(Arc::clone(&ctx), workers);
        Service {
            ctx,
            supervisor: Some(supervisor),
            workers,
        }
    }

    fn make_job(req: ServiceRequest) -> Job {
        let enqueued = Instant::now();
        let deadline = req.deadline.and_then(|d| enqueued.checked_add(d));
        Job {
            req,
            enqueued,
            deadline,
        }
    }

    /// Non-blocking submission; overload surfaces as
    /// [`SubmitError::Backpressure`] and bumps [`ServiceStats::rejected`].
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the queue is full or the service stopped.
    pub fn try_submit(&self, req: ServiceRequest) -> Result<(), SubmitError> {
        let lane = req.priority.lane();
        match self.ctx.queue.try_push(Self::make_job(req), lane) {
            Ok(depth) => {
                self.note_submitted(depth);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                self.ctx.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Backpressure {
                    capacity: self.ctx.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(SubmitError::Stopped),
        }
    }

    /// Blocking submission: waits for queue space instead of failing.
    ///
    /// Beware of single-threaded submit-then-drain loops: with both the
    /// work queue and the response ring bounded, a producer that never
    /// consumes responses while blocked here can deadlock the pipeline.
    /// Use [`Service::try_submit`] plus response draining on backpressure
    /// (what [`Service::run_batch`] and the transport do) when producer
    /// and consumer are the same thread.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] when the service shut down while waiting.
    pub fn submit(&self, req: ServiceRequest) -> Result<(), SubmitError> {
        let lane = req.priority.lane();
        match self.ctx.queue.push(Self::make_job(req), lane) {
            Ok(depth) => {
                self.note_submitted(depth);
                Ok(())
            }
            Err(_) => Err(SubmitError::Stopped),
        }
    }

    fn note_submitted(&self, depth: usize) {
        self.ctx.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.ctx.counters.note_depth(depth);
    }

    /// Next response in completion order; blocks while requests are in
    /// flight. `None` only after the service stopped and drained.
    pub fn recv(&self) -> Option<ServiceResponse> {
        self.ctx.responses.pop()
    }

    /// Like [`Service::recv`] with a timeout; `None` on timeout or
    /// shutdown. A zero timeout is a non-blocking poll.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ServiceResponse> {
        self.ctx.responses.pop_timeout(timeout)
    }

    /// Submits a whole batch and collects exactly one response per
    /// accepted request, in completion order. Backpressure from either
    /// bounded buffer is absorbed by draining responses while submitting
    /// (single-threaded and deadlock-free by construction). Assumes no
    /// other requests are in flight on this service.
    #[must_use]
    pub fn run_batch(&self, requests: Vec<ServiceRequest>) -> Vec<ServiceResponse> {
        let mut responses = Vec::with_capacity(requests.len());
        let mut expected = 0usize;
        for req in requests {
            loop {
                match self.try_submit(req.clone()) {
                    Ok(()) => {
                        expected += 1;
                        break;
                    }
                    Err(SubmitError::Backpressure { .. }) => {
                        // Make room by consuming: a full queue means the
                        // fleet is busy producing responses.
                        if let Some(r) = self.recv_timeout(Duration::from_millis(2)) {
                            responses.push(r);
                        }
                    }
                    Err(SubmitError::Stopped) => break,
                }
            }
        }
        while responses.len() < expected {
            match self.recv() {
                Some(r) => responses.push(r),
                None => break,
            }
        }
        responses
    }

    /// A snapshot of counters, gauges, and cache statistics.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let c = &self.ctx.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            respawns: c.respawns.load(Ordering::Relaxed),
            deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
            queue_depth: self.ctx.queue.len(),
            queue_peak_depth: c.peak_depth.load(Ordering::Relaxed),
            queue_capacity: self.ctx.queue.capacity(),
            response_depth: self.ctx.responses.len(),
            response_peak_depth: c.response_peak_depth.load(Ordering::Relaxed),
            response_capacity: self.ctx.responses.capacity(),
            workers: self.workers,
            total_queued_micros: c.queued_micros.load(Ordering::Relaxed),
            total_service_micros: c.service_micros.load(Ordering::Relaxed),
            cache: self.ctx.cache.stats(),
        }
    }

    /// Begins shutdown without joining: the intake closes, so parked
    /// [`Service::submit`] callers return [`SubmitError::Stopped`]
    /// immediately and new submissions are refused, while already-queued
    /// requests are still served. Callable from any thread (it takes
    /// `&self`), which is what makes the shutdown race testable: a
    /// consumer can close the intake out from under blocked producers.
    /// Follow with [`Service::shutdown`] (or drop) to join the workers.
    pub fn close(&self) {
        // Lift the response ring's bound first: workers blocked on a full
        // ring must drain out, and the backlog is bounded by the work
        // outstanding right now (≤ queue + workers in flight).
        self.ctx.responses.lift_capacity();
        self.ctx.queue.close();
    }

    /// Stops accepting work, drains the queue, joins the workers (via the
    /// supervisor), and returns the final statistics. Queued requests are
    /// still served; undelivered responses remain receivable through
    /// [`Service::recv`] until the service value drops.
    #[must_use]
    pub fn shutdown(&mut self) -> ServiceStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.close();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_workers();
    }
}

pub(crate) fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Renders a `catch_unwind` payload: panic messages are almost always
/// `&str` or `String`; anything else is reported by type only.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The single response path: every response — normal, panic-answered, or
/// deadline-expired — goes through here exactly once, updating the
/// aggregate counters and pushing onto the bounded ring (blocking, so a
/// slow consumer throttles the caller).
pub(crate) fn deliver(ctx: &WorkerContext, response: ServiceResponse) {
    let c = &ctx.counters;
    c.completed.fetch_add(1, Ordering::Relaxed);
    if response.outcome.is_err() {
        c.failed.fetch_add(1, Ordering::Relaxed);
    }
    c.queued_micros
        .fetch_add(response.queued_micros, Ordering::Relaxed);
    c.service_micros
        .fetch_add(response.service_micros, Ordering::Relaxed);
    // A Closed error means the ring was torn down with the response
    // undeliverable (the consumer is gone); nothing left to do with it.
    if let Ok(depth) = ctx.responses.push(response, Lane::Normal) {
        c.response_peak_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Resolves the job's application (through the artifact cache) and runs
/// the synthesis. Pure with respect to service state except the cache.
fn execute(
    session: &mut Session,
    ctx: &WorkerContext,
    config_digest: ContentDigest,
    source: &JobSource,
    request: &SynthesisRequest,
) -> (Result<SynthesisReport, ServiceError>, bool) {
    let key = source
        .digest()
        .combine(config_digest)
        .combine(request.knob_digest());
    match ctx.cache.get(key) {
        Some(prepared) => (
            session
                .synthesize_prepared(&prepared, request)
                .map_err(ServiceError::Synthesis),
            true,
        ),
        None => match source.resolve() {
            Ok(app) => {
                let prepared = Arc::new(PreparedApp::from_arc(app));
                ctx.cache.insert(key, Arc::clone(&prepared));
                (
                    session
                        .synthesize_prepared(&prepared, request)
                        .map_err(ServiceError::Synthesis),
                    false,
                )
            }
            Err(e) => (Err(e), false),
        },
    }
}

pub(crate) fn worker_loop(ctx: &Arc<WorkerContext>, guard: &mut WorkerGuard) {
    let mut session = ctx.engine.session();
    let config_digest = ctx.engine.config_digest();
    while let Some(job) = ctx.queue.pop() {
        let queued_micros = elapsed_micros(job.enqueued);

        // Expired while queued: answer immediately, no synthesis. The
        // worker spends microseconds, not a service time, on it.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            ctx.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
            deliver(
                ctx,
                ServiceResponse {
                    id: job.req.id,
                    outcome: Err(ServiceError::DeadlineExceeded { queued_micros }),
                    cache_hit: false,
                    queued_micros,
                    service_micros: 0,
                    deadline_missed: true,
                },
            );
            continue;
        }

        let chaos = ctx
            .chaos
            .as_ref()
            .map_or_else(ChaosDecision::default, |c| c.decide(job.req.id));
        let started = Instant::now();
        // From here until the response is delivered, the guard owns the
        // request: if this thread dies, the guard answers it.
        guard.inflight = Some(InFlight {
            id: job.req.id,
            queued_micros,
            started,
            deadline: job.deadline,
        });
        if chaos.kill {
            // Outside the per-job isolation on purpose: the thread dies,
            // the guard delivers WorkerPanic, the supervisor respawns.
            panic!("chaos: killing worker on request {}", job.req.id);
        }

        let request = if ctx.intra_parallelism == 0 {
            job.req.request.clone()
        } else {
            job.req
                .request
                .clone()
                .with_max_parallelism(ctx.intra_parallelism)
        };
        let executed = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(stall) = chaos.slow {
                std::thread::sleep(stall);
            }
            if chaos.panic {
                panic!("chaos: injected panic on request {}", job.req.id);
            }
            execute(&mut session, ctx, config_digest, &job.req.source, &request)
        }));
        guard.inflight = None;
        let service_micros = elapsed_micros(started);
        let (outcome, cache_hit) = match executed {
            Ok(result) => result,
            Err(payload) => {
                ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
                // The session's scratch may have been mid-mutation when
                // the panic unwound through it; start clean.
                session = ctx.engine.session();
                (
                    Err(ServiceError::WorkerPanic(panic_message(payload.as_ref()))),
                    false,
                )
            }
        };
        let deadline_missed = job.deadline.is_some_and(|d| Instant::now() > d);
        if deadline_missed {
            ctx.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
        deliver(
            ctx,
            ServiceResponse {
                id: job.req.id,
                outcome,
                cache_hit,
                queued_micros,
                service_micros,
                deadline_missed,
            },
        );
    }
}
