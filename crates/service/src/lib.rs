//! # ftqs-service — the long-lived synthesis fleet service
//!
//! Everything below `crates/cli` synthesizes one application per process
//! invocation. A synthesis *fleet* — sweeping thousands of generated
//! applications, or serving synthesis requests for a family of related
//! configurations — pays the fixed costs over and over: application
//! generation or spec parsing, and the per-application model derivation
//! ([`AppModel`](ftqs_core::ftss) tables, compiled utilities) that every
//! run needs before the actual scheduling starts. This crate is the
//! long-lived server shape for that workload, std-only (no async
//! runtime — synthesis is CPU-bound, so threads *are* the right
//! concurrency primitive offline):
//!
//! ```text
//!  submit / NDJSON lines
//!        │
//!        ▼
//!  bounded work queue ──► worker threads (one Session each)
//!   (backpressure,           │
//!    never a panic)          ▼
//!                     artifact cache  ──  ContentDigest key:
//!                     (LRU, Arc-shared)   app ⊕ engine ⊕ request knobs
//!                            │
//!                            ▼
//!                  completion-order response stream
//! ```
//!
//! * The **work queue** is bounded: [`Service::try_submit`]
//!   surfaces overload as an explicit [`SubmitError::Backpressure`]
//!   error the caller can retry, shed, or block on
//!   ([`Service::submit`]) — the service never panics and never grows
//!   without bound.
//! * **Workers** are plain threads, one per core by default, each owning
//!   a [`ftqs_core::Session`] whose scratch allocations amortize across
//!   every request the worker serves.
//! * The **artifact cache** ([`cache`]) shares [`PreparedApp`]s — the
//!   owned model tables and compiled utilities behind an [`Arc`] —
//!   across workers, keyed by a canonical [`ContentDigest`] of the job
//!   source combined with [`Engine::config_digest`] and
//!   [`SynthesisRequest::knob_digest`]. A hit skips application
//!   generation/parsing *and* model derivation; the synthesis itself
//!   always runs, so a cached response is bit-identical to a cold one
//!   (the cache-correctness tests pin this through
//!   [`ftqs_core::tree_digest`]).
//! * **Responses** stream in completion order, tagged with the request
//!   id, carrying per-request queueing/service timings and the cache
//!   verdict; [`ServiceStats`] aggregates throughput counters, queue
//!   gauges, and cache hit/miss/eviction counts.
//!
//! The NDJSON transport ([`transport`]) wires the same service to files
//! and pipes for `ftqs serve` / `ftqs submit`; malformed request lines
//! produce per-request error responses instead of aborting the batch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod queue;
pub mod transport;

pub use cache::{ArtifactCache, CacheStats};

use ftqs_core::digest::Hasher;
use ftqs_core::{
    Application, ContentDigest, Engine, PreparedApp, SynthesisReport, SynthesisRequest,
};
use queue::{PushError, Queue};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a job's application comes from. The source is hashed *without*
/// building the application, so a cache hit skips generation/parsing
/// entirely.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// An already-built application (in-process callers). Keyed by
    /// [`ftqs_core::application_digest`] — structurally identical
    /// applications share a cache entry regardless of provenance.
    App(Arc<Application>),
    /// Spec text (see [`ftqs_workloads::spec`]). Keyed by the text
    /// itself: conservative (formatting changes re-key) but free.
    Spec(String),
    /// A deterministic workload-family triple (see
    /// [`ftqs_workloads::family`]). Keyed by the triple.
    Preset {
        /// Canonical family name (see [`ftqs_workloads::Family::name`]).
        family: String,
        /// Requested process count.
        size: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl JobSource {
    /// Canonical content digest of the source (no application build).
    #[must_use]
    pub fn digest(&self) -> ContentDigest {
        let mut h = Hasher::new();
        match self {
            JobSource::App(app) => {
                h.write_u8(0);
                return h.finish().combine(ftqs_core::application_digest(app));
            }
            JobSource::Spec(text) => {
                h.write_u8(1);
                h.write_str(text);
            }
            JobSource::Preset { family, size, seed } => {
                h.write_u8(2);
                h.write_str(family);
                h.write_usize(*size);
                h.write_u64(*seed);
            }
        }
        h.finish()
    }

    /// Builds (or passes through) the application.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSource`] on unparseable specs, unknown
    /// family names, or a zero preset size.
    pub fn resolve(&self) -> Result<Arc<Application>, ServiceError> {
        match self {
            JobSource::App(app) => Ok(Arc::clone(app)),
            JobSource::Spec(text) => ftqs_workloads::spec::parse(text)
                .map(Arc::new)
                .map_err(|e| ServiceError::InvalidSource(e.to_string())),
            JobSource::Preset { family, size, seed } => {
                let f = ftqs_workloads::Family::parse(family).ok_or_else(|| {
                    ServiceError::InvalidSource(format!("unknown workload family '{family}'"))
                })?;
                if *size == 0 {
                    return Err(ServiceError::InvalidSource(
                        "preset size must be positive".to_string(),
                    ));
                }
                Ok(Arc::new(ftqs_workloads::family::build(f, *size, *seed)))
            }
        }
    }
}

/// One unit of work: an id (echoed on the response), a job source, and
/// the synthesis request to run against it.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// Caller-chosen id, echoed verbatim on the response.
    pub id: u64,
    /// Where the application comes from.
    pub source: JobSource,
    /// What to synthesize.
    pub request: SynthesisRequest,
}

impl ServiceRequest {
    /// Bundles the three parts of a request.
    #[must_use]
    pub fn new(id: u64, source: JobSource, request: SynthesisRequest) -> Self {
        ServiceRequest {
            id,
            source,
            request,
        }
    }
}

/// Why a request failed (carried per-response; other requests in the
/// batch are unaffected).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The job source could not produce an application.
    InvalidSource(String),
    /// Synthesis itself failed (unschedulable, invalid request knobs…).
    Synthesis(ftqs_core::Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidSource(msg) => write!(f, "invalid job source: {msg}"),
            ServiceError::Synthesis(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One completed (or failed) request, delivered in completion order.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The request's id.
    pub id: u64,
    /// The report, or why there is none.
    pub outcome: Result<SynthesisReport, ServiceError>,
    /// Whether the prepared artifact came from the cache.
    pub cache_hit: bool,
    /// Time spent waiting in the queue, in microseconds.
    pub queued_micros: u64,
    /// Time spent resolving + synthesizing, in microseconds.
    pub service_micros: u64,
}

/// Why a submission was refused. Overload is an error value, never a
/// panic and never silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later, shed the request, or use
    /// the blocking [`Service::submit`].
    Backpressure {
        /// The queue's capacity bound.
        capacity: usize,
    },
    /// The service is shutting down.
    Stopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure { capacity } => {
                write!(f, "work queue full ({capacity} requests queued)")
            }
            SubmitError::Stopped => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bound of the work queue (requests awaiting a worker).
    pub queue_capacity: usize,
    /// Bound of the artifact cache (prepared applications).
    pub cache_capacity: usize,
    /// Per-request synthesis parallelism cap applied by the workers.
    /// The default `1` keeps each request on its worker's core — the
    /// fleet saturates cores by running many requests, not by splitting
    /// one. `0` leaves each request's own setting untouched.
    pub intra_parallelism: usize,
    /// The engine configuration every worker session synthesizes with.
    pub engine: Engine,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_capacity: 256,
            intra_parallelism: 1,
            engine: Engine::new(),
        }
    }
}

/// Aggregate service counters and gauges, as one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses produced (success or failure).
    pub completed: u64,
    /// Responses carrying an error outcome.
    pub failed: u64,
    /// Queue depth at snapshot time (gauge).
    pub queue_depth: usize,
    /// Highest queue depth observed at any submission.
    pub queue_peak_depth: usize,
    /// The queue's capacity bound.
    pub queue_capacity: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Sum of per-request queue-wait times, in microseconds.
    pub total_queued_micros: u64,
    /// Sum of per-request service times, in microseconds.
    pub total_service_micros: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    peak_depth: AtomicUsize,
    queued_micros: AtomicU64,
    service_micros: AtomicU64,
}

impl Counters {
    fn note_depth(&self, depth: usize) {
        self.peak_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct Job {
    req: ServiceRequest,
    enqueued: Instant,
}

/// The running fleet service: a bounded queue, a worker pool, and the
/// shared artifact cache. See the crate docs for the architecture.
///
/// Dropping the service closes the queue, drains in-flight work, and
/// joins the workers ([`Service::shutdown`] does the same and returns
/// the final stats).
#[derive(Debug)]
pub struct Service {
    queue: Arc<Queue<Job>>,
    cache: Arc<ArtifactCache>,
    counters: Arc<Counters>,
    rx: mpsc::Receiver<ServiceResponse>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl Service {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let queue = Arc::new(Queue::new(config.queue_capacity));
        let cache = Arc::new(ArtifactCache::new(config.cache_capacity));
        let counters = Arc::new(Counters::default());
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let counters = Arc::clone(&counters);
                let engine = config.engine.clone();
                let tx = tx.clone();
                let intra = config.intra_parallelism;
                std::thread::Builder::new()
                    .name(format!("ftqs-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &cache, &counters, &engine, intra, &tx))
                    .expect("spawn worker thread")
            })
            .collect();
        Service {
            queue,
            cache,
            counters,
            rx,
            handles,
            workers,
        }
    }

    /// Non-blocking submission; overload surfaces as
    /// [`SubmitError::Backpressure`].
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the queue is full or the service stopped.
    pub fn try_submit(&self, req: ServiceRequest) -> Result<(), SubmitError> {
        let job = Job {
            req,
            enqueued: Instant::now(),
        };
        match self.queue.try_push(job) {
            Ok(depth) => {
                self.note_submitted(depth);
                Ok(())
            }
            Err(PushError::Full(_)) => Err(SubmitError::Backpressure {
                capacity: self.queue.capacity(),
            }),
            Err(PushError::Closed(_)) => Err(SubmitError::Stopped),
        }
    }

    /// Blocking submission: waits for queue space instead of failing.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Stopped`] when the service shut down while waiting.
    pub fn submit(&self, req: ServiceRequest) -> Result<(), SubmitError> {
        let job = Job {
            req,
            enqueued: Instant::now(),
        };
        match self.queue.push(job) {
            Ok(depth) => {
                self.note_submitted(depth);
                Ok(())
            }
            Err(_) => Err(SubmitError::Stopped),
        }
    }

    fn note_submitted(&self, depth: usize) {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters.note_depth(depth);
    }

    /// Next response in completion order; blocks while requests are in
    /// flight. `None` only after the service stopped and drained.
    pub fn recv(&self) -> Option<ServiceResponse> {
        self.rx.recv().ok()
    }

    /// Like [`Service::recv`] with a timeout; `None` on timeout or
    /// shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ServiceResponse> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Submits a whole batch (blocking on queue space) and collects
    /// exactly one response per request, in completion order. Assumes no
    /// other requests are in flight on this service.
    #[must_use]
    pub fn run_batch(&self, requests: Vec<ServiceRequest>) -> Vec<ServiceResponse> {
        let mut expected = 0usize;
        for req in requests {
            if self.submit(req).is_ok() {
                expected += 1;
            }
        }
        (0..expected).filter_map(|_| self.recv()).collect()
    }

    /// A snapshot of counters, gauges, and cache statistics.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            queue_peak_depth: self.counters.peak_depth.load(Ordering::Relaxed),
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            total_queued_micros: self.counters.queued_micros.load(Ordering::Relaxed),
            total_service_micros: self.counters.service_micros.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Stops accepting work, drains the queue, joins the workers, and
    /// returns the final statistics. Queued requests are still served;
    /// undelivered responses remain receivable until the service value
    /// drops.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn worker_loop(
    queue: &Queue<Job>,
    cache: &ArtifactCache,
    counters: &Counters,
    engine: &Engine,
    intra_parallelism: usize,
    tx: &mpsc::Sender<ServiceResponse>,
) {
    let mut session = engine.session();
    let config_digest = engine.config_digest();
    while let Some(job) = queue.pop() {
        let queued_micros = elapsed_micros(job.enqueued);
        let started = Instant::now();
        let request = if intra_parallelism == 0 {
            job.req.request
        } else {
            job.req.request.with_max_parallelism(intra_parallelism)
        };
        let key = job
            .req
            .source
            .digest()
            .combine(config_digest)
            .combine(request.knob_digest());
        let (outcome, cache_hit) = match cache.get(key) {
            Some(prepared) => (
                session
                    .synthesize_prepared(&prepared, &request)
                    .map_err(ServiceError::Synthesis),
                true,
            ),
            None => match job.req.source.resolve() {
                Ok(app) => {
                    let prepared = Arc::new(PreparedApp::from_arc(app));
                    cache.insert(key, Arc::clone(&prepared));
                    (
                        session
                            .synthesize_prepared(&prepared, &request)
                            .map_err(ServiceError::Synthesis),
                        false,
                    )
                }
                Err(e) => (Err(e), false),
            },
        };
        let service_micros = elapsed_micros(started);
        counters.completed.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            counters.failed.fetch_add(1, Ordering::Relaxed);
        }
        counters
            .queued_micros
            .fetch_add(queued_micros, Ordering::Relaxed);
        counters
            .service_micros
            .fetch_add(service_micros, Ordering::Relaxed);
        // A send failure means the receiver (the Service) is gone; the
        // queue is closing, so just keep draining.
        let _ = tx.send(ServiceResponse {
            id: job.req.id,
            outcome,
            cache_hit,
            queued_micros,
            service_micros,
        });
    }
}
