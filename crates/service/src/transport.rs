//! Newline-delimited-JSON transport for the fleet service.
//!
//! One request per line on the way in, one response per line on the way
//! out, in completion order. This is what `ftqs serve` speaks over files
//! and stdin, and what `ftqs submit` generates.
//!
//! Request lines are JSON objects:
//!
//! ```json
//! {"id": 1, "preset": {"family": "fig9", "size": 20, "seed": 7}, "policy": "ftqs", "budget": 8}
//! {"id": 2, "spec": "period 300ms\nfaults 1 x 10ms\n...", "policy": "ftss"}
//! ```
//!
//! * `id` (required): echoed on the response.
//! * exactly one of `spec` (spec text) or `preset`
//!   (`{"family", "size", "seed"}`; `seed` defaults to 0).
//! * `policy` (optional): `"ftss"`, `"ftqs"` (default), or `"ftsf"`;
//!   `budget` (optional, default 8) applies to `"ftqs"`.
//! * `validate` (optional bool) and `max_processes` (optional integer)
//!   forward to the corresponding [`SynthesisRequest`] overrides.
//! * `priority` (optional): `"interactive"` or `"bulk"` (default) —
//!   interactive requests overtake queued bulk requests.
//! * `deadline_ms` (optional integer): service-level deadline from
//!   submission; a request still queued past it is answered with a
//!   deadline-exceeded error instead of being synthesized.
//!
//! A malformed line never aborts the batch: it yields an immediate
//! per-request error response carrying the request id when one could be
//! extracted (and the line number either way), and the remaining lines
//! are served normally.
//!
//! Backpressure: both service buffers are bounded, and [`serve`] is one
//! thread acting as producer *and* consumer — so it never blocks on a
//! full work queue. It submits with [`Service::try_submit`] and, on
//! [`SubmitError::Backpressure`](crate::SubmitError), drains completed
//! responses to the output before retrying; the reader stalls exactly
//! when the fleet is saturated, and memory stays within the configured
//! queue + ring bounds no matter how large the input batch is.

use crate::{JobSource, Priority, Service, ServiceRequest, ServiceResponse, SubmitError};
use ftqs_core::{SynthesisReport, SynthesisRequest};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};
use std::time::Duration;

/// Default FTQS schedule budget for request lines that omit `budget`.
pub const DEFAULT_BUDGET: usize = 8;

/// One response line, as written by [`serve`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireResponse {
    /// The request's id (0 when a malformed line had no extractable id;
    /// the error message then names the line).
    pub id: u64,
    /// Whether `report` is present.
    pub ok: bool,
    /// Why not, when `ok` is false.
    pub error: Option<String>,
    /// Whether the prepared artifact came from the cache.
    pub cache_hit: bool,
    /// Queue-wait time in microseconds.
    pub queued_micros: u64,
    /// Resolve + synthesis time in microseconds.
    pub service_micros: u64,
    /// Whether the request's deadline (if any) had passed by the time
    /// the response was produced.
    pub deadline_missed: bool,
    /// The synthesis report, when `ok`.
    pub report: Option<SynthesisReport>,
}

impl From<ServiceResponse> for WireResponse {
    fn from(r: ServiceResponse) -> Self {
        match r.outcome {
            Ok(report) => WireResponse {
                id: r.id,
                ok: true,
                error: None,
                cache_hit: r.cache_hit,
                queued_micros: r.queued_micros,
                service_micros: r.service_micros,
                deadline_missed: r.deadline_missed,
                report: Some(report),
            },
            Err(e) => WireResponse {
                id: r.id,
                ok: false,
                error: Some(e.to_string()),
                cache_hit: r.cache_hit,
                queued_micros: r.queued_micros,
                service_micros: r.service_micros,
                deadline_missed: r.deadline_missed,
                report: None,
            },
        }
    }
}

/// What [`serve`] pushed through the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines accepted and synthesized.
    pub accepted: u64,
    /// Request lines rejected with a per-line error response.
    pub malformed: u64,
}

fn opt_field<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    value.get_field(name).ok()
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::U64(x) => Some(*x),
        _ => None,
    }
}

fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_bool(value: &Value) -> Option<bool> {
    match value {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn parse_source(value: &Value) -> Result<JobSource, String> {
    let spec = opt_field(value, "spec");
    let preset = opt_field(value, "preset");
    match (spec, preset) {
        (Some(_), Some(_)) => Err("request has both 'spec' and 'preset'".to_string()),
        (None, None) => Err("request needs either 'spec' or 'preset'".to_string()),
        (Some(s), None) => {
            let text = as_str(s).ok_or("'spec' must be a string")?;
            Ok(JobSource::Spec(text.to_string()))
        }
        (None, Some(p)) => {
            let family = opt_field(p, "family")
                .and_then(as_str)
                .ok_or("'preset' needs a string 'family'")?;
            let size = opt_field(p, "size")
                .and_then(as_u64)
                .ok_or("'preset' needs a non-negative integer 'size'")?;
            let seed = match opt_field(p, "seed") {
                None => 0,
                Some(v) => as_u64(v).ok_or("'preset.seed' must be a non-negative integer")?,
            };
            Ok(JobSource::Preset {
                family: family.to_string(),
                size: usize::try_from(size).map_err(|_| "'preset.size' out of range")?,
                seed,
            })
        }
    }
}

fn parse_synthesis_request(value: &Value) -> Result<SynthesisRequest, String> {
    let policy = match opt_field(value, "policy") {
        None => "ftqs",
        Some(v) => as_str(v).ok_or("'policy' must be a string")?,
    };
    let budget = match opt_field(value, "budget") {
        None => DEFAULT_BUDGET,
        Some(v) => {
            let b = as_u64(v).ok_or("'budget' must be a non-negative integer")?;
            usize::try_from(b).map_err(|_| "'budget' out of range")?
        }
    };
    let mut request = match policy {
        "ftss" => SynthesisRequest::ftss(),
        "ftqs" => SynthesisRequest::ftqs(budget),
        "ftsf" => SynthesisRequest::ftsf(),
        other => return Err(format!("unknown policy '{other}' (ftss|ftqs|ftsf)")),
    };
    if let Some(v) = opt_field(value, "validate") {
        request = request.with_validation(as_bool(v).ok_or("'validate' must be a boolean")?);
    }
    if let Some(v) = opt_field(value, "max_processes") {
        let n = as_u64(v).ok_or("'max_processes' must be a non-negative integer")?;
        request = request
            .with_max_processes(usize::try_from(n).map_err(|_| "'max_processes' out of range")?);
    }
    Ok(request)
}

fn parse_priority(value: &Value) -> Result<Priority, String> {
    match opt_field(value, "priority") {
        None => Ok(Priority::default()),
        Some(v) => match as_str(v) {
            Some("interactive") => Ok(Priority::Interactive),
            Some("bulk") => Ok(Priority::Bulk),
            Some(other) => Err(format!("unknown priority '{other}' (interactive|bulk)")),
            None => Err("'priority' must be a string".to_string()),
        },
    }
}

fn parse_deadline(value: &Value) -> Result<Option<Duration>, String> {
    match opt_field(value, "deadline_ms") {
        None => Ok(None),
        Some(v) => {
            let ms = as_u64(v).ok_or("'deadline_ms' must be a non-negative integer")?;
            Ok(Some(Duration::from_millis(ms)))
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// `(id, message)` on malformed input; `id` is present whenever the line
/// was valid JSON with an integer `id`, so the error response can still
/// be correlated.
pub fn parse_request(line: &str) -> Result<ServiceRequest, (Option<u64>, String)> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| (None, format!("malformed JSON: {e}")))?;
    let id = opt_field(&value, "id").and_then(as_u64);
    let fail = |msg: String| (id, msg);
    let Some(id) = id else {
        return Err((
            None,
            "request needs a non-negative integer 'id'".to_string(),
        ));
    };
    let source = parse_source(&value).map_err(fail)?;
    let request = parse_synthesis_request(&value).map_err(fail)?;
    let priority = parse_priority(&value).map_err(fail)?;
    let deadline = parse_deadline(&value).map_err(fail)?;
    let mut service_request = ServiceRequest::new(id, source, request).with_priority(priority);
    if let Some(deadline) = deadline {
        service_request = service_request.with_deadline(deadline);
    }
    Ok(service_request)
}

/// Renders a preset request line as `ftqs submit` emits it. `priority`
/// (interactive|bulk) and `deadline_ms` are emitted only when given.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn preset_request_line(
    id: u64,
    family: &str,
    size: usize,
    seed: u64,
    policy: &str,
    budget: usize,
    priority: Option<&str>,
    deadline_ms: Option<u64>,
) -> String {
    let preset = Value::Map(vec![
        ("family".to_string(), Value::Str(family.to_string())),
        ("size".to_string(), Value::U64(size as u64)),
        ("seed".to_string(), Value::U64(seed)),
    ]);
    let mut fields = vec![
        ("id".to_string(), Value::U64(id)),
        ("preset".to_string(), preset),
        ("policy".to_string(), Value::Str(policy.to_string())),
        ("budget".to_string(), Value::U64(budget as u64)),
    ];
    if let Some(priority) = priority {
        fields.push(("priority".to_string(), Value::Str(priority.to_string())));
    }
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::U64(ms)));
    }
    serde_json::to_string(&Value::Map(fields)).expect("value rendering is infallible")
}

fn write_response<W: Write>(output: &mut W, response: &WireResponse) -> std::io::Result<()> {
    let line = serde_json::to_string(response).expect("report serialization is infallible");
    writeln!(output, "{line}")
}

fn error_response(id: Option<u64>, line_number: u64, message: &str) -> WireResponse {
    let error = match id {
        Some(_) => message.to_string(),
        None => format!("line {line_number}: {message}"),
    };
    WireResponse {
        id: id.unwrap_or(0),
        ok: false,
        error: Some(error),
        cache_hit: false,
        queued_micros: 0,
        service_micros: 0,
        deadline_missed: false,
        report: None,
    }
}

/// Reads NDJSON requests from `input`, runs them through `service`, and
/// writes NDJSON responses to `output` in completion order (malformed
/// lines answer immediately, in input order). Blank lines are skipped.
/// Returns once every accepted request has been answered.
///
/// Backpressure from the bounded work queue is absorbed by draining
/// completed responses to the output before retrying the submission (see
/// the module docs) — the input reader stalls when the fleet is
/// saturated, and both service buffers stay within their bounds.
///
/// # Errors
///
/// Only I/O errors propagate; malformed requests and failed syntheses
/// are per-line error responses.
pub fn serve<R: BufRead, W: Write>(
    service: &Service,
    input: R,
    output: &mut W,
) -> std::io::Result<ServeSummary> {
    let mut accepted: u64 = 0;
    let mut answered: u64 = 0;
    let mut malformed: u64 = 0;
    for (index, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(request) => loop {
                match service.try_submit(request.clone()) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(SubmitError::Backpressure { .. }) => {
                        // Full queue: the fleet is busy producing
                        // responses, so consume one to make room.
                        if let Some(response) = service.recv_timeout(Duration::from_millis(2)) {
                            answered += 1;
                            write_response(output, &WireResponse::from(response))?;
                        }
                    }
                    Err(SubmitError::Stopped) => break,
                }
            },
            Err((id, message)) => {
                malformed += 1;
                write_response(output, &error_response(id, index as u64 + 1, &message))?;
            }
        }
        // Stream whatever has already completed so huge batches don't
        // buffer every response until the input is drained.
        while answered < accepted {
            match service.recv_timeout(Duration::ZERO) {
                Some(response) => {
                    answered += 1;
                    write_response(output, &WireResponse::from(response))?;
                }
                None => break,
            }
        }
    }
    while answered < accepted {
        match service.recv() {
            Some(response) => {
                answered += 1;
                write_response(output, &WireResponse::from(response))?;
            }
            None => break,
        }
    }
    output.flush()?;
    Ok(ServeSummary {
        accepted,
        malformed,
    })
}
