//! Worker supervision: spawn, watch, answer for, and respawn the fleet's
//! worker threads.
//!
//! The first line of defense against a panicking job is *inside* the
//! worker: each request executes under `catch_unwind`, so a panic is
//! answered as [`ServiceError::WorkerPanic`](crate::ServiceError) and the
//! thread keeps serving. This module is the second line, for panics that
//! unwind *outside* that isolation (a bug in the worker loop itself, or a
//! chaos-injected kill):
//!
//! * every worker thread carries a [`WorkerGuard`] whose `Drop` runs even
//!   during unwinding — if the thread dies with a request in flight, the
//!   guard delivers that request's `WorkerPanic` response (the
//!   exactly-one-response contract survives thread death) and reports the
//!   exit to the supervisor;
//! * a dedicated supervisor thread owns the worker `JoinHandle`s,
//!   respawns any worker that died while the service is live (bumping the
//!   `respawns` counter), lets workers retire normally during shutdown,
//!   and — once the last worker is gone — closes the response ring so
//!   consumers drain the remaining responses and then observe the end of
//!   the stream.
//!
//! The queue itself recovers from mutex poisoning (see [`crate::queue`]),
//! so a dying worker can never wedge the producers or its replacement.

use crate::{deliver, elapsed_micros, worker_loop, ServiceError, ServiceResponse, WorkerContext};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// A worker's request in flight, tracked so the guard can answer it if
/// the thread dies before the normal response path runs.
#[derive(Debug)]
pub(crate) struct InFlight {
    pub(crate) id: u64,
    pub(crate) queued_micros: u64,
    pub(crate) started: Instant,
    pub(crate) deadline: Option<Instant>,
}

#[derive(Debug)]
struct ExitEvent {
    index: usize,
    panicked: bool,
}

/// Lives on each worker thread's stack for the thread's whole life; its
/// `Drop` is the thread's last word (it runs during unwinding too).
#[derive(Debug)]
pub(crate) struct WorkerGuard {
    ctx: Arc<WorkerContext>,
    index: usize,
    events: mpsc::Sender<ExitEvent>,
    /// Set for the duration of each job's execution; taken back on the
    /// normal response path. A value here at drop time means the thread
    /// died mid-request.
    pub(crate) inflight: Option<InFlight>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let panicked = std::thread::panicking();
        if panicked {
            self.ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
            if let Some(job) = self.inflight.take() {
                let deadline_missed = job.deadline.is_some_and(|d| Instant::now() > d);
                if deadline_missed {
                    self.ctx
                        .counters
                        .deadline_misses
                        .fetch_add(1, Ordering::Relaxed);
                }
                deliver(
                    &self.ctx,
                    ServiceResponse {
                        id: job.id,
                        outcome: Err(ServiceError::WorkerPanic(
                            "worker thread died while serving the request".to_string(),
                        )),
                        cache_hit: false,
                        queued_micros: job.queued_micros,
                        service_micros: elapsed_micros(job.started),
                        deadline_missed,
                    },
                );
            }
        }
        // The supervisor may already be gone during teardown; nothing to
        // do about it then.
        let _ = self.events.send(ExitEvent {
            index: self.index,
            panicked,
        });
    }
}

/// Spawns the supervisor thread, which in turn spawns (and thereafter
/// owns) the `workers` worker threads.
pub(crate) fn start(ctx: Arc<WorkerContext>, workers: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("ftqs-supervisor".to_string())
        .spawn(move || supervise(&ctx, workers))
        .expect("spawn supervisor thread")
}

fn supervise(ctx: &Arc<WorkerContext>, workers: usize) {
    let (tx, rx) = mpsc::channel();
    let mut handles: Vec<Option<JoinHandle<()>>> = (0..workers)
        .map(|i| Some(spawn_worker(ctx, i, &tx)))
        .collect();
    let mut live = workers;
    while live > 0 {
        let Ok(event) = rx.recv() else { break };
        // The guard sends its event during unwinding, so the thread is at
        // most an epilogue away from exiting — this join is immediate.
        if let Some(handle) = handles[event.index].take() {
            let _ = handle.join();
        }
        if event.panicked && !ctx.queue.is_closed() {
            ctx.counters.respawns.fetch_add(1, Ordering::Relaxed);
            handles[event.index] = Some(spawn_worker(ctx, event.index, &tx));
        } else {
            live -= 1;
        }
    }
    // No worker remains and none will be respawned: no further responses
    // can be produced, so end the response stream. Consumers drain what
    // is buffered, then observe `None`.
    ctx.responses.close();
}

fn spawn_worker(
    ctx: &Arc<WorkerContext>,
    index: usize,
    events: &mpsc::Sender<ExitEvent>,
) -> JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    let events = events.clone();
    std::thread::Builder::new()
        .name(format!("ftqs-worker-{index}"))
        .spawn(move || {
            let mut guard = WorkerGuard {
                ctx: Arc::clone(&ctx),
                index,
                events,
                inflight: None,
            };
            worker_loop(&ctx, &mut guard);
        })
        .expect("spawn worker thread")
}
