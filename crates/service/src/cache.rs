//! The cross-request artifact cache.
//!
//! Maps a [`ContentDigest`] cache key (application content combined with
//! the engine/request knob digests — see [`crate::Service`]) to an
//! [`Arc<PreparedApp>`]: the owned model tables and compiled utilities a
//! synthesis run needs. Entries are immutable and shared read-only, so a
//! hit costs one lock acquisition and one `Arc` clone; the synthesis
//! itself runs outside the lock.
//!
//! Eviction is least-recently-used over a capacity bound. The map is
//! small (hundreds of entries, each a few hundred KB at most), so LRU is
//! tracked with a monotonic use-stamp per entry and eviction scans for
//! the minimum — O(capacity), which at these sizes is cheaper and
//! simpler than an intrusive list, and never wrong.
//!
//! Builds happen *outside* the lock: two workers missing on the same key
//! concurrently will both build and both insert (last write wins — the
//! artifacts are bit-identical by construction, so which `Arc` survives
//! is unobservable). Both misses are counted; the duplicate build is the
//! accepted cost of not serializing every cold synthesis behind a build
//! lock.

use ftqs_core::{ContentDigest, PreparedApp};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Counters and occupancy of an [`ArtifactCache`], as one coherent
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found a prepared artifact.
    pub hits: u64,
    /// Lookups that found nothing (each implies one artifact build).
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub entries: usize,
    /// The capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<PreparedApp>,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<ContentDigest, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Bounded, thread-safe LRU cache of prepared synthesis artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ArtifactCache {
    /// An empty cache bounded to `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    /// Locks the cache state, recovering from poisoning: no method can
    /// panic while the map is half-mutated (the entry type has no
    /// panicking paths between mutations), so the state behind a
    /// poisoned lock is still coherent — a panicking worker thread must
    /// never wedge the rest of the fleet out of the cache.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up, counting a hit or a miss and refreshing recency.
    #[must_use]
    pub fn get(&self, key: ContentDigest) -> Option<Arc<PreparedApp>> {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = Arc::clone(&entry.value);
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when the capacity bound is hit. Re-inserting an existing key
    /// replaces its value without counting an eviction.
    pub fn insert(&self, key: ContentDigest, value: Arc<PreparedApp>) {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("capacity > 0 means a non-empty full map");
            inner.map.remove(&lru);
            inner.evictions += 1;
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// A coherent snapshot of the counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock_inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqs_core::{
        application_digest, Application, ExecutionTimes, FaultModel, Time, UtilityFunction,
    };

    fn app(period_ms: u64) -> Application {
        let mut b = Application::builder(
            Time::from_ms(period_ms),
            FaultModel::new(1, Time::from_ms(10)),
        );
        let p1 = b.add_hard(
            "P1",
            ExecutionTimes::uniform(Time::from_ms(30), Time::from_ms(70)).unwrap(),
            Time::from_ms(180),
        );
        let p2 = b.add_soft(
            "P2",
            ExecutionTimes::uniform(Time::from_ms(30), Time::from_ms(70)).unwrap(),
            UtilityFunction::step(40.0, [(Time::from_ms(90), 20.0)]).unwrap(),
        );
        b.add_dependency(p1, p2).unwrap();
        b.build().unwrap()
    }

    fn prepared(period_ms: u64) -> (ContentDigest, Arc<PreparedApp>) {
        let a = app(period_ms);
        (application_digest(&a), Arc::new(PreparedApp::new(&a)))
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = ArtifactCache::new(2);
        let (k1, v1) = prepared(300);
        let (k2, v2) = prepared(400);
        let (k3, v3) = prepared(500);

        assert!(cache.get(k1).is_none());
        cache.insert(k1, v1);
        assert!(cache.get(k1).is_some());
        cache.insert(k2, v2);
        // k1 was last touched before k2's insertion, so the third insert
        // displaces k1.
        cache.insert(k3, v3);
        assert!(cache.get(k1).is_none(), "LRU entry evicted");
        assert!(cache.get(k2).is_some());
        assert!(cache.get(k3).is_some());

        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn reinserting_a_key_is_not_an_eviction() {
        let cache = ArtifactCache::new(1);
        let (k1, v1) = prepared(300);
        cache.insert(k1, Arc::clone(&v1));
        cache.insert(k1, v1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn recency_is_refreshed_by_get() {
        let cache = ArtifactCache::new(2);
        let (k1, v1) = prepared(300);
        let (k2, v2) = prepared(400);
        let (k3, v3) = prepared(500);
        cache.insert(k1, v1);
        cache.insert(k2, v2);
        assert!(cache.get(k1).is_some()); // refresh k1: k2 is now LRU
        cache.insert(k3, v3);
        assert!(cache.get(k1).is_some());
        assert!(cache.get(k2).is_none(), "k2 was the LRU entry");
    }
}
