//! The bounded two-lane MPMC work queue feeding the worker pool (and,
//! reused with a single lane, the bounded response ring).
//!
//! A deliberately simple `Mutex<two VecDeques>` + two `Condvar`s: the
//! service is synthesis-bound (each job costs 100 µs – 100 ms of CPU), so
//! queue handoff is never the bottleneck and a lock-free ring would buy
//! nothing but complexity. What matters is the *shape* of the contract:
//!
//! * **bounded** — [`Queue::try_push`] fails with the item returned when
//!   the queue is full, which the service surfaces as an explicit
//!   backpressure error instead of unbounded memory growth or a panic;
//! * **two lanes** — [`Lane::Express`] items (interactive requests)
//!   overtake [`Lane::Normal`] items (bulk sweeps) at every pop; within a
//!   lane, order is FIFO. The capacity bound covers both lanes together.
//! * **closable** — [`Queue::close`] wakes every blocked producer and
//!   consumer; consumers drain the remaining items, then observe `None`
//!   and exit.
//! * **poison-immune** — every lock acquisition recovers from mutex
//!   poisoning with [`PoisonError::into_inner`]. The queue's invariants
//!   hold at every point a panic could unwind through (no method leaves
//!   the deques in a half-mutated state), so a poisoned lock is safe to
//!   re-enter and one panicking thread can never wedge the fleet.
//! * **relaxable** — [`Queue::lift_capacity`] removes the bound during
//!   shutdown so producers blocked on a full queue drain out instead of
//!   deadlocking against a consumer that is busy joining them. The
//!   post-lift occupancy stays bounded by the work outstanding at the
//!   moment of the lift.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Which of the two FIFO lanes an item enters. Express items overtake
/// normal items; the shared capacity bound covers both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    /// Served first (interactive requests).
    Express,
    /// Served when no express item is waiting (bulk requests, and the
    /// single lane of the response ring).
    Normal,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    express: VecDeque<T>,
    normal: VecDeque<T>,
    closed: bool,
    /// When set, the capacity bound is ignored (shutdown drain).
    relaxed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.express.len() + self.normal.len()
    }

    fn take(&mut self) -> Option<T> {
        self.express.pop_front().or_else(|| self.normal.pop_front())
    }

    fn lane_mut(&mut self, lane: Lane) -> &mut VecDeque<T> {
        match lane {
            Lane::Express => &mut self.express,
            Lane::Normal => &mut self.normal,
        }
    }
}

/// Bounded two-lane multi-producer/multi-consumer queue (see the module
/// docs).
#[derive(Debug)]
pub(crate) struct Queue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Queue {
            inner: Mutex::new(Inner {
                express: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
                relaxed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue state, recovering from poisoning: the invariants
    /// hold at every point a panic can unwind through, so the state
    /// behind a poisoned lock is still coherent.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current depth across both lanes (a gauge; racy by nature, exact at
    /// the instant read).
    pub(crate) fn len(&self) -> usize {
        self.lock_inner().len()
    }

    /// Whether [`Queue::close`] has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.lock_inner().closed
    }

    /// Non-blocking push; full or closed queues hand the item back.
    pub(crate) fn try_push(&self, item: T, lane: Lane) -> Result<usize, PushError<T>> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if !inner.relaxed && inner.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.lane_mut(lane).push_back(item);
        let depth = inner.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking push: waits for space (or closure). Returns the depth
    /// after the push, or the item back if the queue closed while
    /// waiting.
    pub(crate) fn push(&self, item: T, lane: Lane) -> Result<usize, PushError<T>> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.relaxed || inner.len() < self.capacity {
                inner.lane_mut(lane).push_back(item);
                let depth = inner.len();
                drop(inner);
                self.not_empty.notify_one();
                return Ok(depth);
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking pop: `Some(item)` while the queue is live or draining,
    /// `None` once it is closed *and* empty. Express items first.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(item) = inner.take() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Queue::pop`] with a timeout: `None` on timeout as well as on
    /// closed-and-empty. A zero timeout is a non-blocking poll.
    pub(crate) fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now().checked_add(timeout);
        let mut inner = self.lock_inner();
        loop {
            if let Some(item) = inner.take() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            let remaining = match deadline {
                Some(d) if d > now => d - now,
                _ => return None,
            };
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Removes the capacity bound (irreversibly) and wakes every blocked
    /// producer: the shutdown drain. Occupancy stays bounded by the items
    /// outstanding at the lift.
    pub(crate) fn lift_capacity(&self) {
        self.lock_inner().relaxed = true;
        self.not_full.notify_all();
    }

    /// Closes the queue: producers fail fast, consumers drain then exit.
    pub(crate) fn close(&self) {
        self.lock_inner().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_reports_backpressure_and_hands_the_item_back() {
        let q = Queue::new(2);
        assert_eq!(q.try_push(1, Lane::Normal), Ok(1));
        assert_eq!(q.try_push(2, Lane::Normal), Ok(2));
        assert_eq!(q.try_push(3, Lane::Normal), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3, Lane::Normal), Ok(2));
    }

    #[test]
    fn express_lane_overtakes_normal_but_stays_fifo_within_lanes() {
        let q = Queue::new(8);
        q.try_push('a', Lane::Normal).unwrap();
        q.try_push('b', Lane::Normal).unwrap();
        q.try_push('x', Lane::Express).unwrap();
        q.try_push('y', Lane::Express).unwrap();
        q.try_push('c', Lane::Normal).unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop_timeout(Duration::ZERO)).collect();
        assert_eq!(order, ['x', 'y', 'a', 'b', 'c']);
    }

    #[test]
    fn capacity_bound_covers_both_lanes_together() {
        let q = Queue::new(2);
        q.try_push(1, Lane::Normal).unwrap();
        q.try_push(2, Lane::Express).unwrap();
        assert_eq!(q.try_push(3, Lane::Express), Err(PushError::Full(3)));
        assert_eq!(q.try_push(3, Lane::Normal), Err(PushError::Full(3)));
    }

    #[test]
    fn close_drains_then_stops_consumers_and_rejects_producers() {
        let q = Queue::new(8);
        q.try_push('a', Lane::Normal).unwrap();
        q.close();
        assert_eq!(q.try_push('b', Lane::Normal), Err(PushError::Closed('b')));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(Queue::new(1));
        q.try_push(0u32, Lane::Normal).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1, Lane::Normal).is_ok())
        };
        // The producer is blocked on a full queue until this pop.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn consumers_block_until_items_or_close() {
        let q = Arc::new(Queue::<u8>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_timeout_polls_and_expires() {
        let q = Queue::<u8>::new(4);
        assert_eq!(q.pop_timeout(Duration::ZERO), None);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        q.try_push(7, Lane::Normal).unwrap();
        assert_eq!(q.pop_timeout(Duration::ZERO), Some(7));
    }

    #[test]
    fn lift_capacity_unblocks_producers_without_consuming() {
        let q = Arc::new(Queue::new(1));
        q.try_push(0u32, Lane::Normal).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1, Lane::Normal).is_ok())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.lift_capacity();
        assert!(producer.join().unwrap());
        assert_eq!(q.len(), 2, "lifted queue accepted past the bound");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn panicking_consumer_does_not_break_subsequent_push_pop() {
        // A thread panicking while holding the lock poisons the mutex;
        // every queue operation must recover (the invariants hold at every
        // unwind point), so one bad job can never wedge the fleet.
        let q = Arc::new(Queue::new(4));
        q.try_push(1, Lane::Normal).unwrap();
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.inner.lock().unwrap();
                panic!("poison the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(q.inner.lock().is_err(), "the lock is actually poisoned");
        assert_eq!(q.try_push(2, Lane::Express), Ok(2));
        assert_eq!(q.pop(), Some(2), "express still overtakes after poison");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 0);
        q.close();
        assert_eq!(q.pop(), None);
    }
}
