//! The bounded MPMC work queue feeding the worker pool.
//!
//! A deliberately simple `Mutex<VecDeque>` + two `Condvar`s: the service
//! is synthesis-bound (each job costs 100 µs – 100 ms of CPU), so queue
//! handoff is never the bottleneck and a lock-free ring would buy
//! nothing but complexity. What matters is the *shape* of the contract:
//!
//! * **bounded** — [`Queue::try_push`] fails with the item returned when
//!   the queue is full, which the service surfaces as an explicit
//!   backpressure error instead of unbounded memory growth or a panic;
//! * **closable** — [`Queue::close`] wakes every blocked producer and
//!   consumer; consumers drain the remaining items, then observe `None`
//!   and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue (see the module docs).
#[derive(Debug)]
pub(crate) struct Queue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (a gauge; racy by nature, exact at the instant read).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Non-blocking push; full or closed queues hand the item back.
    pub(crate) fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking push: waits for space (or closure). Returns the depth
    /// after the push, or the item back if the queue closed while
    /// waiting.
    pub(crate) fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                let depth = inner.items.len();
                drop(inner);
                self.not_empty.notify_one();
                return Ok(depth);
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Blocking pop: `Some(item)` while the queue is live or draining,
    /// `None` once it is closed *and* empty.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: producers fail fast, consumers drain then exit.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_reports_backpressure_and_hands_the_item_back() {
        let q = Queue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_stops_consumers_and_rejects_producers() {
        let q = Queue::new(8);
        q.try_push('a').unwrap();
        q.close();
        assert_eq!(q.try_push('b'), Err(PushError::Closed('b')));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(Queue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on a full queue until this pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn consumers_block_until_items_or_close() {
        let q = Arc::new(Queue::<u8>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
